//! Split-finding kernels for TreeServer.
//!
//! This crate implements Appendix B of the paper — the per-column algorithms
//! that find the best split-condition of a single attribute over the rows
//! `Dx` of a tree node — plus the approximate machinery used by the
//! baselines:
//!
//! - [`impurity`]: Gini index, entropy and variance, with incremental
//!   (add/remove one label) aggregates so a sorted scan finds the best
//!   numeric threshold in one pass with `O(1)` incremental cost.
//! - [`exact`]: exact best splits — *Case 1* (ordinal `Ai <= v` via sorted
//!   scan), *Case 2* (categorical regression via Breiman's
//!   sort-groups-by-mean), *Case 3* (categorical classification via
//!   one-vs-rest singleton subsets `|Sl| = 1`).
//! - [`condition`]: the split-condition type shared by every trainer, and
//!   row partitioning (how a delegate worker splits `Ix` into `Ixl`/`Ixr`).
//! - [`histogram`]: equi-depth binning and mergeable histograms — the
//!   PLANET/MLlib approximation (`maxBins`).
//! - [`hist`]: the distributed histogram split engine — allocation-free
//!   per-node per-bin kernels over load-time `BinnedColumn` indices, used
//!   by the engine's `--splitter hist` mode (docs/HISTOGRAM.md).
//! - [`sketch`]: a mergeable weighted quantile sketch — the XGBoost
//!   approximation.
//! - [`random`]: the completely-random splits used by extra-trees
//!   (Appendix F).
//! - [`sorted`]: the sorted-column split engine — presorted per-column
//!   indices, row bitmaps and a thread-local scratch arena that turn the
//!   exact numeric kernel into an allocation-free linear scan (docs/PERF.md).
//!
//! All kernels are deterministic, with explicit total-order tie-breaking, so
//! the distributed engine and the single-threaded trainer produce *identical*
//! trees — the invariant behind the paper's "exact training" claim and this
//! repo's strongest integration test.

pub mod condition;
pub mod exact;
pub mod hist;
pub mod histogram;
pub mod impurity;
pub mod random;
pub mod sketch;
pub mod sorted;

pub use condition::{partition_positions, partition_rows, partition_rows_buf, SplitTest};
pub use exact::{best_split_for_column, ColumnSplit};
pub use hist::{best_hist_split_at, top_k_candidates, HistCandidate, HistColumnRef};
pub use impurity::{Impurity, LabelView, NodeStats};
pub use sorted::{best_split_at, kernel_counters, ColumnRef, KernelCounters, NodeRows, RowBitmap};
