//! Seeded pseudo-random numbers for the workspace.
//!
//! A deliberately narrow, dependency-free replacement for the slice of the
//! `rand` crate this repository uses: `StdRng::seed_from_u64`, `gen`,
//! `gen_range`, `gen_bool` and slice `shuffle`. Every generator is
//! explicitly seeded — there is no entropy source here at all, which is the
//! point: the whole test suite (and the fault-injection harness in
//! `ts-netsim`) must be replayable from a single `u64`.
//!
//! The engine is xoshiro256** (Blackman & Vigna), state-initialised with
//! SplitMix64 so that nearby seeds produce uncorrelated streams. Sequences
//! differ from the real `rand` crate's ChaCha-based `StdRng`; nothing in
//! the workspace depends on a specific stream, only on determinism.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng, StdRng};
}

pub mod rngs {
    //! Named generators (only one: the workspace standard).
    pub use crate::StdRng;
}

/// Explicit-seed construction. The only way to make a generator here.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The SplitMix64 finalizer: maps any u64 to a well-mixed u64.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — the workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The uniform-draw surface. Only `next_u64` is required; everything else
/// derives from it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of a primitive (`f64`/`f32` in `[0, 1)`, full range
    /// for integers and `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from a half-open or inclusive range (unbiased for
    /// integers via Lemire rejection).
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types `Rng::gen` can draw uniformly.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Unbiased uniform in `[0, n)` (Lemire's multiply-and-reject).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range!(
    u32 => u64,
    u64 => u64,
    usize => u64,
    i32 => i64,
    i64 => i64,
);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

pub mod seq {
    //! Slice helpers (`rand::seq` subset).
    use super::{uniform_below, Rng};

    /// In-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Standard;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_all_and_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values should appear");
        for _ in 0..1_000 {
            let v = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f = r.gen_range(0.2f64..0.8);
            assert!((0.2..0.8).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let mut v2: Vec<u32> = (0..50).collect();
        let mut r2 = StdRng::seed_from_u64(3);
        v2.shuffle(&mut r2);
        assert_eq!(v, v2);
    }

    #[test]
    fn works_through_mut_reference() {
        fn take<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = take(&mut r);
        let via_ref: &mut StdRng = &mut r;
        let _ = take(via_ref);
    }

    #[test]
    fn standard_ints_cover_high_bits() {
        let mut r = StdRng::seed_from_u64(13);
        let any_high = (0..64).any(|_| {
            let v: u64 = Standard::sample(&mut r);
            v > u64::MAX / 2
        });
        assert!(any_high);
    }
}
