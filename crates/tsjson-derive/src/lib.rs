//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for `tsjson`.
//!
//! Implemented directly on `proc_macro::TokenStream` — no syn/quote — so
//! the workspace builds with nothing beyond the standard library. Supports
//! exactly the shapes the workspace derives on: non-generic structs (named,
//! tuple, unit) and enums (unit, tuple and struct variants), encoded with
//! serde's default conventions (field-order objects, newtype transparency,
//! externally tagged enums). Field `#[...]` attributes and doc comments are
//! ignored; generics and lifetimes are rejected at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields: only the arity matters.
    Tuple(usize),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = serialize_fields(fields, &SelfAccess);
            format!(
                "impl ::tsjson::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::tsjson::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::tsjson::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::tsjson::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::tsjson::Serialize::to_value({b})"))
                                .collect();
                            format!("::tsjson::Value::Arr(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                                 let mut __m = ::tsjson::Map::new();\n\
                                 __m.insert(\"{vname}\".to_string(), {payload});\n\
                                 ::tsjson::Value::Obj(__m)\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Fields::Named(fs) => {
                        let inserts: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "__inner.insert(\"{f}\".to_string(), \
                                     ::tsjson::Serialize::to_value({f}));"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut __inner = ::tsjson::Map::new();\n\
                                 {inserts}\n\
                                 let mut __m = ::tsjson::Map::new();\n\
                                 __m.insert(\"{vname}\".to_string(), ::tsjson::Value::Obj(__inner));\n\
                                 ::tsjson::Value::Obj(__m)\n\
                             }}\n",
                            binds = fs.join(", "),
                            inserts = inserts.join("\n"),
                        ));
                    }
                }
            }
            format!(
                "impl ::tsjson::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::tsjson::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("tsjson-derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = deserialize_fields(fields, name, name, "__v");
            format!(
                "impl ::tsjson::Deserialize for {name} {{\n\
                     fn from_value(__v: &::tsjson::Value) \
                         -> ::std::result::Result<Self, ::tsjson::Error> {{\n\
                         ::std::result::Result::Ok({body})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let path = format!("{name}::{vname}");
                let build = match fields {
                    Fields::Unit => path.clone(),
                    _ => deserialize_fields(fields, &path, &path, "__payload"),
                };
                arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({build}),\n"
                ));
            }
            format!(
                "impl ::tsjson::Deserialize for {name} {{\n\
                     fn from_value(__v: &::tsjson::Value) \
                         -> ::std::result::Result<Self, ::tsjson::Error> {{\n\
                         let (__tag, __payload) = ::tsjson::enum_tag(__v, \"{name}\")?;\n\
                         let _ = __payload;\n\
                         match __tag {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(\
                                 ::tsjson::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("tsjson-derive generated invalid Rust")
}

/// `&self.f` field access for struct Serialize.
struct SelfAccess;

fn serialize_fields(fields: &Fields, _access: &SelfAccess) -> String {
    match fields {
        Fields::Unit => "::tsjson::Value::Null".to_string(),
        Fields::Named(fs) => {
            let inserts: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert(\"{f}\".to_string(), \
                         ::tsjson::Serialize::to_value(&self.{f}));"
                    )
                })
                .collect();
            format!(
                "{{ let mut __m = ::tsjson::Map::new(); {} ::tsjson::Value::Obj(__m) }}",
                inserts.join(" ")
            )
        }
        Fields::Tuple(1) => "::tsjson::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::tsjson::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::tsjson::Value::Arr(vec![{}])", items.join(", "))
        }
    }
}

/// A constructor expression decoding `fields` of `path` out of `src`
/// (an expression of type `&Value`). `ty` names the shape in errors.
fn deserialize_fields(fields: &Fields, path: &str, ty: &str, src: &str) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::tsjson::Deserialize::from_value(\
                         ::tsjson::field({src}, \"{f}\", \"{ty}\")?)?,"
                    )
                })
                .collect();
            format!("{path} {{ {} }}", inits.join(" "))
        }
        Fields::Tuple(1) => {
            format!("{path}(::tsjson::Deserialize::from_value({src})?)")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::tsjson::Deserialize::from_value(\
                         ::tsjson::tuple_item({src}, {i}, {n}, \"{ty}\")?)?"
                    )
                })
                .collect();
            format!("{path}({})", items.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("tsjson-derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("tsjson-derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("tsjson-derive: generic types are not supported (on {name})");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("tsjson-derive: unsupported struct body for {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("tsjson-derive: expected enum body for {name}, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("tsjson-derive: cannot derive for {other} items"),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body: `a: T, b: U, ...`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("tsjson-derive: expected field name, got {other:?}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("tsjson-derive: expected ':' after field {name}, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        // Optional trailing comma already consumed by skip_type.
    }
    fields
}

/// Arity of a tuple-field body: `pub T, U, ...`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        n += 1;
    }
    n
}

/// Advances past one type (field type or discriminant expression),
/// stopping after the comma that follows it, if any. Tracks `<...>`
/// nesting; parens/brackets arrive as single `Group` tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("tsjson-derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type(&tokens, &mut i);
        variants.push((name, fields));
    }
    variants
}
