//! JSON for the workspace: a value model, a strict parser, compact and
//! pretty printers, `Serialize`/`Deserialize` traits with derive macros,
//! and a small `json!` literal macro.
//!
//! A dependency-free replacement for the `serde` + `serde_json` subset this
//! repository uses. Encoding conventions match serde's defaults so existing
//! model files keep their shape:
//!
//! - structs -> objects in field order; newtype structs -> the inner value;
//!   tuple structs/tuples -> arrays;
//! - enums externally tagged: unit variants as `"Name"`, data variants as
//!   `{"Name": ...}`;
//! - non-finite floats serialise as `null`, and `null` deserialises into a
//!   float as NaN (round-tripping missing-value sentinels);
//! - floats print with the shortest representation that round-trips (std's
//!   float formatting), integers as integers.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

mod parser;

pub use tsjson_derive::{Deserialize, Serialize};

/// A parse or decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integers keep their integer identity, like serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }
}

/// An object: key/value pairs in insertion order (duplicate keys keep the
/// first occurrence on lookup).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) {
        self.entries.push((key, value));
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Any JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Arr(Vec<Value>),
    Obj(Map),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys (or non-objects) index to `Null`, as in serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Printing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => {
            // std float Display is shortest-round-trip; keep a trailing
            // ".0" so floats re-parse as floats.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Obj(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Entry points

/// Serialises to compact JSON. Never actually fails; the `Result` mirrors
/// serde_json's signature at existing call sites.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialises to pretty-printed JSON bytes (2-space indent).
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out.into_bytes())
}

/// Parses a complete JSON document and decodes it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parser::parse(s)?)
}

/// Parses a UTF-8 JSON document from bytes and decodes it.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Decodes an already-parsed value.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Traits

/// Conversion into a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

fn expected(what: &str, got: &Value) -> Error {
    Error::msg(format!("expected {what}, got {}", got.kind()))
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v.as_u64().ok_or_else(|| expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v.as_i64().ok_or_else(|| expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            // Non-finite floats serialise as null; read them back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Arc<T>, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| expected("array (tuple)", v))?;
                let want = [$($n),+].len();
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "expected array of {want}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl Serialize for Duration {
    /// serde's `Duration` shape: `{"secs": u64, "nanos": u32}`.
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_string(), self.as_secs().to_value());
        m.insert("nanos".to_string(), self.subsec_nanos().to_value());
        Value::Obj(m)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Duration, Error> {
        let secs = u64::from_value(&v["secs"])?;
        let nanos = u32::from_value(&v["nanos"])?;
        Ok(Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Support used by the derive macros (stable names, not for direct use).

#[doc(hidden)]
pub fn field<'v>(v: &'v Value, name: &str, ty: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Obj(m) => Ok(m.get(name).unwrap_or(&NULL)),
        other => Err(Error::msg(format!(
            "expected object for {ty}, got {}",
            other.kind()
        ))),
    }
}

#[doc(hidden)]
pub fn tuple_item<'v>(v: &'v Value, idx: usize, len: usize, ty: &str) -> Result<&'v Value, Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::msg(format!("expected array for {ty}, got {}", v.kind())))?;
    if items.len() != len {
        return Err(Error::msg(format!(
            "expected array of {len} for {ty}, got {}",
            items.len()
        )));
    }
    Ok(&items[idx])
}

#[doc(hidden)]
pub fn enum_tag<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    match v {
        // Unit variants are bare strings.
        Value::Str(s) => Ok((s, &NULL)),
        // Data variants are single-key objects: {"Variant": payload}.
        Value::Obj(m) if m.len() == 1 => {
            let (k, payload) = m.iter().next().expect("len checked");
            Ok((k, payload))
        }
        other => Err(Error::msg(format!(
            "expected enum (string or single-key object) for {ty}, got {}",
            other.kind()
        ))),
    }
}

#[doc(hidden)]
pub fn unknown_variant(tag: &str, ty: &str) -> Error {
    Error::msg(format!("unknown variant {tag:?} for {ty}"))
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports the subset the
/// workspace uses: object literals with string keys, array literals, and
/// any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![$($crate::Serialize::to_value(&$item)),*])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert($key.to_string(), $crate::Serialize::to_value(&$val));)*
        $crate::Value::Obj(map)
    }};
    ($other:expr) => { $crate::Serialize::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let parsed: Value = from_str(v).unwrap();
            let back = to_string(&parsed).unwrap();
            let reparsed: Value = from_str(&back).unwrap();
            assert_eq!(parsed, reparsed, "{v}");
        }
    }

    #[test]
    fn object_preserves_order_and_indexing() {
        let v: Value = from_str(r#"{"b": 1, "a": [2, {"c": "x"}]}"#).unwrap();
        assert_eq!(v["b"].as_u64(), Some(1));
        assert_eq!(v["a"][1]["c"], "x");
        assert!(v["missing"].is_null());
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":[2,{"c":"x"}]}"#);
    }

    #[test]
    fn floats_roundtrip_shortest() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 2.5e17, -0.0, 123456.789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn nan_and_inf_become_null_and_back_to_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
        let v: Vec<f64> = from_str(&to_string(&vec![1.0, f64::NAN]).unwrap()).unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_nan());
    }

    #[test]
    fn option_and_tuple_shapes() {
        assert_eq!(to_string(&Some(3u32)).unwrap(), "3");
        assert_eq!(to_string(&None::<u32>).unwrap(), "null");
        let t: (u32, String) = from_str(r#"[7, "x"]"#).unwrap();
        assert_eq!(t, (7, "x".to_string()));
        assert!(from_str::<(u32, u32)>("[1]").is_err());
    }

    #[test]
    fn duration_uses_serde_shape() {
        let d = Duration::new(3, 250_000_000);
        let s = to_string(&d).unwrap();
        assert_eq!(s, r#"{"secs":3,"nanos":250000000}"#);
        assert_eq!(from_str::<Duration>(&s).unwrap(), d);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"kind": "tree", "n": 3u32, "items": [1u8, 2u8]});
        assert_eq!(v["kind"], "tree");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["items"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<u32>("-3").is_err());
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn pretty_printer_is_reparseable() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        let pretty = String::from_utf8(to_vec_pretty(&v).unwrap()).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"slash\\tab\tunicode\u{1F600}control\u{01}";
        let j = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
        // \u escapes, including surrogate pairs, parse too.
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&n).unwrap()).unwrap(), n);
    }
}
