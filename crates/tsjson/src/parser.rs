//! A strict recursive-descent JSON parser.
//!
//! Accepts exactly the RFC 8259 grammar (no comments, no trailing commas,
//! no bare NaN/Infinity) with a nesting-depth limit as a stack guard.

use crate::{Error, Map, Number, Value};

const MAX_DEPTH: usize = 128;

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped at ASCII
                // delimiters, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate in \\u escape"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number fraction"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(v).map(|v| -v) {
                        return Ok(Value::Num(Number::I(i)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(v)));
            }
            // Integer overflow: fall through to f64 like serde_json's
            // arbitrary-precision-off mode.
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("malformed number"))
    }
}
