//! Multi-producer multi-consumer channels over `std::sync`, plus the lock
//! wrappers in [`sync`].
//!
//! A dependency-free replacement for the narrow `crossbeam_channel` subset
//! the simulated cluster uses: `unbounded`, `bounded`, cloneable `Sender`
//! **and** `Receiver` (worker comper pools share one receiver), blocking
//! `send`/`recv` with disconnect errors, and `try_iter`. No `select!`, no
//! timeouts — the engine does not use them.
//!
//! Disconnect semantics match crossbeam: `send` fails once every receiver
//! is gone; `recv` drains remaining messages and only then fails once every
//! sender is gone.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

pub mod sync;

/// Error on [`Sender::send`]: every receiver disconnected. Carries the
/// undelivered message.
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error on [`Receiver::recv`]: channel empty and every sender disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Creates a channel holding at most `cap` in-flight messages (`cap >= 1`;
/// the engine only uses this as a one-slot completion mailbox).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "tschan::bounded requires capacity >= 1");
    with_cap(Some(cap))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half. Cloneable; the channel disconnects for receivers when
/// the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Delivers `msg`, blocking while a bounded channel is full. Fails only
    /// when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half. Cloneable: clones share one queue (each message is
/// delivered to exactly one receiver), which is how worker comper pools
/// compete for tasks.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Takes the next message, blocking while the channel is empty. Fails
    /// only when the channel is empty **and** every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Drains whatever is currently queued without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    fn try_recv_now(&self) -> Option<T> {
        let msg = self.shared.state.lock().unwrap().queue.pop_front();
        if msg.is_some() {
            self.shared.not_full.notify_one();
        }
        msg
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake blocked senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Iterator over currently-queued messages; never blocks.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_a_channel() {
        let (s, r) = unbounded();
        for i in 0..100 {
            s.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(r.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_drains_before_reporting_disconnect() {
        let (s, r) = unbounded();
        s.send(1).unwrap();
        s.send(2).unwrap();
        drop(s);
        assert_eq!(r.recv(), Ok(1));
        assert_eq!(r.recv(), Ok(2));
        assert_eq!(r.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_once_receivers_gone() {
        let (s, r) = unbounded();
        drop(r);
        assert!(s.send(7).is_err());
    }

    #[test]
    fn cloned_receivers_compete_for_messages() {
        let (s, r) = unbounded::<u32>();
        let r2 = r.clone();
        let consumers: Vec<_> = [r, r2]
            .into_iter()
            .map(|rx| thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count()))
            .collect();
        for i in 0..1_000 {
            s.send(i).unwrap();
        }
        drop(s);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1_000, "each message delivered exactly once");
    }

    #[test]
    fn bounded_one_blocks_until_consumed() {
        let (s, r) = bounded(1);
        s.send(1).unwrap();
        let t = thread::spawn(move || s.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(r.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(r.recv(), Ok(2));
    }

    #[test]
    fn try_iter_never_blocks() {
        let (s, r) = unbounded();
        s.send(1).unwrap();
        s.send(2).unwrap();
        assert_eq!(r.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(r.try_iter().count(), 0);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (s, r) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let s = s.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        s.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(s);
        let mut got = Vec::new();
        while let Ok(v) = r.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 1_000);
        assert!(got.windows(2).all(|w| w[0] != w[1]));
    }
}
