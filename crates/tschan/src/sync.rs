//! `Mutex`/`RwLock`/`Condvar` wrappers with the `parking_lot` calling
//! convention the engine uses: `.lock()`, `.read()` and `.write()` return
//! guards directly, and `Condvar::wait_timeout` returns `(guard, timed_out)`.
//!
//! Backed by `std::sync`; a poisoned lock panics, which matches how the
//! engine treated `parking_lot` (no poison handling anywhere).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Mutual exclusion without a poison `Result` at every call site.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("tschan::sync::Mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("tschan::sync::Mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("tschan::sync::Mutex poisoned")
    }
}

/// Reader-writer lock without a poison `Result` at every call site.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("tschan::sync::RwLock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("tschan::sync::RwLock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("tschan::sync::RwLock poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("tschan::sync::RwLock poisoned")
    }
}

/// Condition variable composing with [`Mutex`]: the guards our `Mutex`
/// hands out *are* `std::sync::MutexGuard`s, so std's condvar works on
/// them unchanged — this wrapper only strips the poison `Result`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with std.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .expect("tschan::sync::Condvar mutex poisoned")
    }

    /// Blocks until notified or `dur` elapses. Returns the reacquired
    /// guard and whether the wait timed out (no notification arrived).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) = self
            .inner
            .wait_timeout(guard, dur)
            .expect("tschan::sync::Condvar mutex poisoned");
        (guard, res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn condvar_wakes_waiter_before_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            let mut timed_out = false;
            while !*done {
                let (g, t) = cv.wait_timeout(done, Duration::from_secs(5));
                done = g;
                timed_out = t;
            }
            timed_out
        });
        thread::sleep(Duration::from_millis(5));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        // The waiter saw the flag via notification, not the 5 s timeout.
        assert!(!waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let (_g, timed_out) = cv.wait_timeout(lock.lock(), Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
