//! `Mutex`/`RwLock` wrappers with the `parking_lot` calling convention the
//! engine uses: `.lock()`, `.read()` and `.write()` return guards directly.
//!
//! Backed by `std::sync`; a poisoned lock panics, which matches how the
//! engine treated `parking_lot` (no poison handling anywhere).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without a poison `Result` at every call site.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("tschan::sync::Mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("tschan::sync::Mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("tschan::sync::Mutex poisoned")
    }
}

/// Reader-writer lock without a poison `Result` at every call site.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("tschan::sync::RwLock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("tschan::sync::RwLock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("tschan::sync::RwLock poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("tschan::sync::RwLock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
