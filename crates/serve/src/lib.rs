//! ts-serve: the compiled batched inference engine.
//!
//! Training produces three artefact kinds — a single
//! [`DecisionTreeModel`](ts_tree::DecisionTreeModel), a bagged
//! [`ForestModel`](ts_tree::ForestModel), and a boosted
//! [`GbtModel`](treeserver::GbtModel). This crate compiles any of them into
//! a [`CompiledModel`]: every member tree flattened once into the
//! structure-of-arrays layout of [`ts_tree::compiled`], scored over whole
//! tables in cache-friendly row blocks, optionally fanned out over `tspar`
//! threads, with batch latency/throughput recorded into a [`ServeStats`]
//! metrics registry.
//!
//! The engine is **bit-for-bit identical** to the reference per-row
//! traversal for every model kind, depth cap, block size, and thread count;
//! `tests/compiled_equiv.rs` is the differential property suite that keeps
//! it that way. See `docs/SERVING.md` for the layout and the traversal
//! algorithm.

pub mod engine;
pub mod stats;

pub use engine::{CompiledModel, ServeOptions};
pub use stats::{BatchSpan, ServeStats};
