//! Serving-side observability: batch counters and latency histograms.
//!
//! A [`ServeStats`] wraps a [`ts_obs::MetricsRegistry`] with the four
//! serving metrics every [`CompiledModel`](crate::CompiledModel) records
//! when one is attached:
//!
//! - `serve_batches` — number of whole-table predict calls served;
//! - `serve_rows` — total rows scored;
//! - `serve_batch_latency_us` — per-call wall latency (µs, log₂ buckets);
//! - `serve_batch_rows` — per-call batch size (rows, log₂ buckets).
//!
//! The registry is shareable (`Arc`) and lock-free on the hot path, so one
//! `ServeStats` can sit behind many concurrent predict calls.

use std::sync::Arc;
use std::time::Duration;
use ts_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};

/// Shared serving metrics. Construct once, attach to compiled models with
/// [`CompiledModel::with_stats`](crate::CompiledModel::with_stats).
pub struct ServeStats {
    registry: MetricsRegistry,
    batches: Arc<Counter>,
    rows: Arc<Counter>,
    latency_us: Arc<Histogram>,
    batch_rows: Arc<Histogram>,
}

impl ServeStats {
    /// A fresh registry with the serving metrics registered.
    pub fn new() -> ServeStats {
        let registry = MetricsRegistry::new();
        ServeStats {
            batches: registry.counter("serve_batches"),
            rows: registry.counter("serve_rows"),
            latency_us: registry.histogram("serve_batch_latency_us"),
            batch_rows: registry.histogram("serve_batch_rows"),
            registry,
        }
    }

    /// Records one whole-table predict call of `rows` rows taking `wall`.
    pub fn record_batch(&self, rows: usize, wall: Duration) {
        self.batches.inc();
        self.rows.add(rows as u64);
        self.latency_us.observe(wall.as_micros() as u64);
        self.batch_rows.observe(rows as u64);
    }

    /// Number of predict calls recorded so far.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Total rows scored so far.
    pub fn rows(&self) -> u64 {
        self.rows.get()
    }

    /// Point-in-time snapshot of all serving metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The snapshot rendered as JSON (counters + histogram summaries).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = ServeStats::new();
        s.record_batch(100, Duration::from_micros(250));
        s.record_batch(50, Duration::from_micros(80));
        assert_eq!(s.batches(), 2);
        assert_eq!(s.rows(), 150);
        let snap = s.snapshot();
        assert_eq!(snap.counter("serve_batches"), 2);
        assert_eq!(snap.counter("serve_rows"), 150);
        let h = snap.histogram("serve_batch_rows").expect("registered");
        assert_eq!(h.count, 2);
        assert!(s.to_json().contains("serve_batch_latency_us"));
    }
}
