//! Serving-side observability: batch counters and latency histograms.
//!
//! A [`ServeStats`] wraps a [`ts_obs::MetricsRegistry`] with the four
//! serving metrics every [`CompiledModel`](crate::CompiledModel) records
//! when one is attached:
//!
//! - `serve_batches` — number of whole-table predict calls served;
//! - `serve_rows` — total rows scored;
//! - `serve_batch_latency_us` — per-call wall latency (µs, log₂ buckets);
//! - `serve_batch_rows` — per-call batch size (rows, log₂ buckets).
//!
//! The registry is shareable (`Arc`) and lock-free on the hot path, so one
//! `ServeStats` can sit behind many concurrent predict calls.
//!
//! Each predict call also leaves a [`BatchSpan`] in a bounded ring (newest
//! kept), mirroring the training side's ts-trace spans: a span id, the batch
//! size, and start/duration timestamps relative to the `ServeStats` epoch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ts_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};

/// Maximum retained batch spans; older ones are dropped (drop-oldest, like
/// the training rings).
const SPAN_CAP: usize = 256;

/// One served batch, as a span: when it started (ns since the `ServeStats`
/// epoch), how long it took, and how many rows it scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpan {
    /// Per-`ServeStats` span id, starting at 1.
    pub span: u64,
    /// Rows scored by this call.
    pub rows: u64,
    /// Start, in nanoseconds since the `ServeStats` was constructed.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

/// Shared serving metrics. Construct once, attach to compiled models with
/// [`CompiledModel::with_stats`](crate::CompiledModel::with_stats).
pub struct ServeStats {
    registry: MetricsRegistry,
    batches: Arc<Counter>,
    rows: Arc<Counter>,
    latency_us: Arc<Histogram>,
    batch_rows: Arc<Histogram>,
    epoch: Instant,
    next_span: AtomicU64,
    spans: Mutex<VecDeque<BatchSpan>>,
}

impl ServeStats {
    /// A fresh registry with the serving metrics registered.
    pub fn new() -> ServeStats {
        let registry = MetricsRegistry::new();
        ServeStats {
            batches: registry.counter("serve_batches"),
            rows: registry.counter("serve_rows"),
            latency_us: registry.histogram("serve_batch_latency_us"),
            batch_rows: registry.histogram("serve_batch_rows"),
            registry,
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            spans: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one whole-table predict call of `rows` rows taking `wall`.
    pub fn record_batch(&self, rows: usize, wall: Duration) {
        self.batches.inc();
        self.rows.add(rows as u64);
        self.latency_us.observe(wall.as_micros() as u64);
        self.batch_rows.observe(rows as u64);
        let span = self.next_span.fetch_add(1, Ordering::Relaxed);
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        let dur_ns = wall.as_nanos() as u64;
        let mut spans = self.spans.lock().expect("span log poisoned");
        if spans.len() == SPAN_CAP {
            spans.pop_front();
        }
        spans.push_back(BatchSpan {
            span,
            rows: rows as u64,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
        });
    }

    /// The retained batch spans, oldest first (at most [the cap] newest).
    pub fn batch_spans(&self) -> Vec<BatchSpan> {
        self.spans
            .lock()
            .expect("span log poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Number of predict calls recorded so far.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Total rows scored so far.
    pub fn rows(&self) -> u64 {
        self.rows.get()
    }

    /// Point-in-time snapshot of all serving metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The snapshot rendered as JSON (counters + histogram summaries).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// The snapshot rendered in Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        self.snapshot().to_prometheus_text()
    }

    /// Division-guarded reductions over the serving metrics. Safe on any
    /// stats state — zero batches, 0-row batches, 0µs latencies — in the
    /// same shape as the `ClusterReport::from_stats` 0-worker guard: every
    /// ratio degrades to `0.0`, never to NaN/∞.
    pub fn summary(&self) -> ServeSummary {
        let batches = self.batches.get();
        let rows = self.rows.get();
        let lat = self.latency_us.snapshot();
        let mean_batch_rows = if batches == 0 {
            0.0
        } else {
            rows as f64 / batches as f64
        };
        let mean_latency_us = if lat.count == 0 {
            0.0
        } else {
            lat.sum as f64 / lat.count as f64
        };
        let rows_per_sec = if lat.sum == 0 {
            0.0
        } else {
            rows as f64 / (lat.sum as f64 / 1e6)
        };
        ServeSummary {
            batches,
            rows,
            mean_batch_rows,
            mean_latency_us,
            rows_per_sec,
        }
    }
}

/// Derived serving throughput/latency figures; see [`ServeStats::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSummary {
    /// Predict calls recorded.
    pub batches: u64,
    /// Total rows scored.
    pub rows: u64,
    /// Mean rows per batch (0.0 when no batches).
    pub mean_batch_rows: f64,
    /// Mean per-call latency, µs (0.0 when no batches).
    pub mean_latency_us: f64,
    /// Aggregate scoring rate over measured wall time (0.0 when no wall
    /// time was measured — e.g. only sub-µs or 0-row calls).
    pub rows_per_sec: f64,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = ServeStats::new();
        s.record_batch(100, Duration::from_micros(250));
        s.record_batch(50, Duration::from_micros(80));
        assert_eq!(s.batches(), 2);
        assert_eq!(s.rows(), 150);
        let snap = s.snapshot();
        assert_eq!(snap.counter("serve_batches"), 2);
        assert_eq!(snap.counter("serve_rows"), 150);
        let h = snap.histogram("serve_batch_rows").expect("registered");
        assert_eq!(h.count, 2);
        assert!(s.to_json().contains("serve_batch_latency_us"));
        assert!(s
            .to_prometheus_text()
            .contains("# TYPE serve_batches counter"));
    }

    /// Regression: the 0-row and 1-row block edge cases. A 0-row batch
    /// must count as a batch, land in bucket 0 of both histograms, and
    /// every summary ratio must stay finite (no divide-by-zero/NaN).
    #[test]
    fn zero_row_and_one_row_batches_are_well_defined() {
        let s = ServeStats::new();
        // Empty stats: all ratios are exactly 0.0, not NaN.
        let empty = s.summary();
        assert_eq!(empty.batches, 0);
        assert_eq!(empty.mean_batch_rows, 0.0);
        assert_eq!(empty.mean_latency_us, 0.0);
        assert_eq!(empty.rows_per_sec, 0.0);

        // A 0-row batch with zero measured latency: the degenerate corner.
        s.record_batch(0, Duration::ZERO);
        assert_eq!(s.batches(), 1);
        assert_eq!(s.rows(), 0);
        let snap = s.snapshot();
        let h = snap.histogram("serve_batch_rows").expect("registered");
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets, vec![(0, 1)], "0 rows lands in bucket 0");
        let sum = s.summary();
        assert_eq!(sum.mean_batch_rows, 0.0);
        assert_eq!(sum.mean_latency_us, 0.0);
        assert_eq!(sum.rows_per_sec, 0.0, "no wall time measured yet");
        assert!(sum.rows_per_sec.is_finite() && sum.mean_batch_rows.is_finite());

        // A 1-row batch: ratios become exact, still finite.
        s.record_batch(1, Duration::from_micros(4));
        let sum = s.summary();
        assert_eq!(sum.batches, 2);
        assert_eq!(sum.rows, 1);
        assert_eq!(sum.mean_batch_rows, 0.5);
        assert_eq!(sum.mean_latency_us, 2.0);
        assert_eq!(sum.rows_per_sec, 250_000.0);
        // The span ring logged both, including the 0-row span.
        let spans = s.batch_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].rows, 0);
        assert_eq!(spans[1].rows, 1);
    }

    #[test]
    fn batch_spans_are_logged_in_order_and_capped() {
        let s = ServeStats::new();
        s.record_batch(10, Duration::from_micros(5));
        s.record_batch(20, Duration::from_micros(7));
        let spans = s.batch_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].span, 1);
        assert_eq!(spans[1].span, 2);
        assert_eq!(spans[1].rows, 20);
        assert_eq!(spans[1].dur_ns, 7_000);
        assert!(spans[0].start_ns <= spans[1].start_ns);

        // Overflow keeps the newest spans only.
        for _ in 0..SPAN_CAP + 10 {
            s.record_batch(1, Duration::from_micros(1));
        }
        let spans = s.batch_spans();
        assert_eq!(spans.len(), SPAN_CAP);
        assert_eq!(
            spans.last().expect("non-empty").span,
            2 + (SPAN_CAP + 10) as u64
        );
    }
}
