//! The batched serving engine: compiled multi-tree models, block-parallel
//! evaluation, and optional metrics recording.
//!
//! [`CompiledModel`] is the serving-side counterpart to the three training
//! artefacts — [`DecisionTreeModel`], [`ForestModel`], [`GbtModel`] — with
//! every member tree flattened once into a [`CompiledTree`]
//! (structure-of-arrays node layout, contiguous categorical-set pool and
//! payload buffers; see `ts_tree::compiled` and docs/SERVING.md). Scoring
//! splits the table into row blocks and fans the blocks out over `tspar`;
//! rows are independent, and inside each row the per-tree fold order and
//! arithmetic expressions are exactly the reference traversal's, so the
//! results are **bit-for-bit identical** to the per-row walk for any block
//! size and thread count (`tests/compiled_equiv.rs` enforces this).

use std::sync::Arc;
use std::time::Instant;
use treeserver::{GbtModel, GbtObjective};
use ts_datatable::{DataTable, Task};
use ts_tree::forest::argmax;
use ts_tree::{CompiledTree, DecisionTreeModel, ForestModel, TableView};

use crate::stats::ServeStats;

/// How the member trees combine into predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Combine {
    /// One tree: its own node payloads are the prediction.
    Single,
    /// Bagged forest: average PMFs (classification) or means (regression).
    Bagged,
    /// Boosted additive model: `base + η · Σ tree(x)`.
    Additive {
        base: f64,
        eta: f64,
        objective: GbtObjective,
    },
}

/// Serving knobs. The defaults serve whole tables single-threaded in
/// 4096-row blocks with no depth cap.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Rows per evaluation block. Each block's terminal-node ids should
    /// stay cache-resident; 1024–8192 is a good range.
    pub block_rows: usize,
    /// `tspar` thread count for the block fan-out; `0` = machine
    /// parallelism, `1` = sequential.
    pub threads: usize,
    /// Appendix-D depth cap applied during traversal (`u32::MAX` = none).
    pub max_depth: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            block_rows: ts_tree::compiled::DEFAULT_BLOCK_ROWS,
            threads: 1,
            max_depth: u32::MAX,
        }
    }
}

impl ServeOptions {
    /// Builder: block size.
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows;
        self
    }

    /// Builder: thread count (0 = machine parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: depth cap.
    pub fn with_max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = max_depth;
        self
    }
}

/// A model compiled for batched serving.
pub struct CompiledModel {
    trees: Vec<CompiledTree>,
    combine: Combine,
    task: Task,
    opts: ServeOptions,
    stats: Option<Arc<ServeStats>>,
}

impl CompiledModel {
    /// Compiles a single decision tree.
    pub fn from_tree(model: &DecisionTreeModel) -> CompiledModel {
        CompiledModel {
            trees: vec![CompiledTree::compile(model)],
            combine: Combine::Single,
            task: model.task,
            opts: ServeOptions::default(),
            stats: None,
        }
    }

    /// Compiles every member of a bagged forest.
    pub fn from_forest(model: &ForestModel) -> CompiledModel {
        CompiledModel {
            trees: model.trees.iter().map(CompiledTree::compile).collect(),
            combine: Combine::Bagged,
            task: model.task,
            opts: ServeOptions::default(),
            stats: None,
        }
    }

    /// Compiles a boosted additive model.
    pub fn from_gbt(model: &GbtModel) -> CompiledModel {
        CompiledModel {
            trees: model.trees.iter().map(CompiledTree::compile).collect(),
            combine: Combine::Additive {
                base: model.base,
                eta: model.eta,
                objective: model.objective,
            },
            task: match model.objective {
                GbtObjective::SquaredError => Task::Regression,
                GbtObjective::Logistic => Task::Classification { n_classes: 2 },
            },
            opts: ServeOptions::default(),
            stats: None,
        }
    }

    /// Builder: serving options.
    pub fn with_options(mut self, opts: ServeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Builder: attach a metrics sink; every predict call records a batch.
    pub fn with_stats(mut self, stats: Arc<ServeStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The prediction task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of compiled member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total compiled nodes across all member trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(CompiledTree::n_nodes).sum()
    }

    /// Class labels for every row. Defined for classification trees and
    /// forests and for logistic boosted models (`margin > 0`).
    pub fn predict_labels(&self, table: &DataTable) -> Vec<u32> {
        self.timed(table, |m| match m.combine {
            Combine::Single => {
                let tree = &m.trees[0];
                m.map_blocks(table, 1, |nodes, out| {
                    for (o, &n) in out.iter_mut().zip(nodes) {
                        *o = tree.label_of(n);
                    }
                })
            }
            Combine::Bagged => {
                let k = m.n_classes();
                m.pmf_blocks(table).chunks(k.max(1)).map(argmax).collect()
            }
            Combine::Additive { objective, .. } => {
                assert_eq!(
                    objective,
                    GbtObjective::Logistic,
                    "labels from a squared-error boosted model"
                );
                m.margin_blocks(table)
                    .into_iter()
                    .map(|v| u32::from(v > 0.0))
                    .collect()
            }
        })
    }

    /// Regression values for every row. Defined for regression trees and
    /// forests and squared-error boosted models.
    pub fn predict_values(&self, table: &DataTable) -> Vec<f64> {
        self.timed(table, |m| match m.combine {
            Combine::Single => {
                let tree = &m.trees[0];
                m.map_blocks(table, 1, |nodes, out| {
                    for (o, &n) in out.iter_mut().zip(nodes) {
                        *o = tree.value_of(n);
                    }
                })
            }
            Combine::Bagged => {
                if m.trees.is_empty() {
                    return vec![0.0; table.n_rows()];
                }
                let n_trees = m.trees.len() as f64;
                let mut acc = m.value_sum_blocks(table);
                for a in &mut acc {
                    *a /= n_trees;
                }
                acc
            }
            Combine::Additive { objective, .. } => {
                assert_eq!(
                    objective,
                    GbtObjective::SquaredError,
                    "values from a logistic boosted model"
                );
                m.margin_blocks(table)
            }
        })
    }

    /// Per-row class PMFs, row-major in one flat `n_rows * n_classes`
    /// buffer. A single tree reports its terminal node's PMF; a forest the
    /// average over member trees.
    pub fn predict_pmf_flat(&self, table: &DataTable) -> Vec<f32> {
        self.timed(table, |m| match m.combine {
            Combine::Single => {
                let tree = &m.trees[0];
                let k = m.n_classes();
                m.map_blocks(table, k, |nodes, out| {
                    for (dst, &n) in out.chunks_exact_mut(k).zip(nodes) {
                        dst.copy_from_slice(tree.pmf_of(n));
                    }
                })
            }
            Combine::Bagged => m.pmf_blocks(table),
            Combine::Additive { .. } => panic!("PMFs from a boosted model"),
        })
    }

    /// Per-row class PMFs as one `Vec` per row.
    pub fn predict_pmf(&self, table: &DataTable) -> Vec<Vec<f32>> {
        let k = self.n_classes();
        self.predict_pmf_flat(table)
            .chunks(k.max(1))
            .map(<[f32]>::to_vec)
            .collect()
    }

    /// Raw boosted margins (`base + η · Σ tree(x)`); additive models only.
    pub fn predict_margins(&self, table: &DataTable) -> Vec<f64> {
        assert!(
            matches!(self.combine, Combine::Additive { .. }),
            "margins are only defined for boosted models"
        );
        self.timed(table, |m| m.margin_blocks(table))
    }

    /// PMF width; panics on regression models.
    fn n_classes(&self) -> usize {
        self.task
            .n_classes()
            .expect("PMF prediction requires a classification model") as usize
    }

    /// Times `f` and records one batch into the attached stats, if any.
    fn timed<T>(&self, table: &DataTable, f: impl FnOnce(&Self) -> T) -> T {
        let start = Instant::now();
        let out = f(self);
        if let Some(stats) = &self.stats {
            stats.record_batch(table.n_rows(), start.elapsed());
        }
        out
    }

    /// Resolved worker count (`0` = machine parallelism, like `tspar`).
    fn effective_threads(&self) -> usize {
        if self.opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.opts.threads
        }
    }

    /// Fans row blocks out over `tspar`, writing each block's results
    /// straight into one preallocated `width`-per-row output buffer — no
    /// per-block `Vec`s and no concatenation copy. Each worker owns a
    /// contiguous span of whole blocks and reuses one [`BlockImage`] and
    /// one node buffer across them. `f` receives the terminal node ids of
    /// the block's rows (for `self.trees[0]` — the single-tree path) and
    /// the block's output slice.
    fn map_blocks<T: Copy + Default + Send>(
        &self,
        table: &DataTable,
        width: usize,
        f: impl Fn(&[u32], &mut [T]) + Sync,
    ) -> Vec<T> {
        let view = TableView::of(table);
        let mut out = vec![T::default(); view.n_rows() * width];
        if out.is_empty() {
            return out;
        }
        let block = self.opts.block_rows.max(1);
        let n_blocks = view.n_rows().div_ceil(block);
        let span = n_blocks.div_ceil(self.effective_threads().min(n_blocks)) * block;
        let mut spans: Vec<&mut [T]> = out.chunks_mut(span * width).collect();
        let tree = &self.trees[0];
        tspar::par_for_each_mut(&mut spans, self.opts.threads, |s, chunk| {
            let mut nodes = vec![0u32; block];
            let mut img = view.image();
            let mut first = s * span;
            for blk in chunk.chunks_mut(block * width) {
                let len = blk.len() / width;
                img.fill(first, len);
                tree.terminal_nodes_into(&img, self.opts.max_depth, &mut nodes[..len]);
                f(&nodes[..len], blk);
                first += len;
            }
        });
        drop(spans);
        out
    }

    /// Per-block multi-tree fold: for each block, runs every member tree
    /// over the block's rows and folds into the block's slice of one
    /// preallocated `width`-per-row accumulator seeded with `init`, in
    /// tree order — the reference fold order. As in [`Self::map_blocks`],
    /// each worker walks a span of blocks with reused buffers, and each
    /// block's image is filled once and walked by every member tree.
    fn fold_blocks<A: Clone + Send>(
        &self,
        table: &DataTable,
        width: usize,
        init: A,
        fold: impl Fn(&CompiledTree, &[u32], &mut [A]) + Sync,
    ) -> Vec<A> {
        let view = TableView::of(table);
        let mut out = vec![init; view.n_rows() * width];
        if out.is_empty() {
            return out;
        }
        let block = self.opts.block_rows.max(1);
        let n_blocks = view.n_rows().div_ceil(block);
        let span = n_blocks.div_ceil(self.effective_threads().min(n_blocks)) * block;
        let mut spans: Vec<&mut [A]> = out.chunks_mut(span * width).collect();
        tspar::par_for_each_mut(&mut spans, self.opts.threads, |s, chunk| {
            let mut nodes = vec![0u32; block];
            let mut img = view.image();
            let mut first = s * span;
            for blk in chunk.chunks_mut(block * width) {
                let len = blk.len() / width;
                img.fill(first, len);
                for tree in &self.trees {
                    tree.terminal_nodes_into(&img, self.opts.max_depth, &mut nodes[..len]);
                    fold(tree, &nodes[..len], blk);
                }
                first += len;
            }
        });
        drop(spans);
        out
    }

    /// Sum of member-tree PMFs per row (row-major, unnormalised).
    fn pmf_sum_blocks(&self, table: &DataTable) -> Vec<f32> {
        let k = self.n_classes();
        self.fold_blocks(table, k, 0f32, |tree, nodes, acc| {
            for (i, &node) in nodes.iter().enumerate() {
                for (a, b) in acc[i * k..(i + 1) * k].iter_mut().zip(tree.pmf_of(node)) {
                    *a += b;
                }
            }
        })
    }

    /// Averaged forest PMFs, row-major. A zero-tree forest serves the
    /// uninformed uniform prior, matching `ForestModel::predict_pmf`.
    fn pmf_blocks(&self, table: &DataTable) -> Vec<f32> {
        let k = self.n_classes();
        if self.trees.is_empty() {
            let p = if k == 0 { 0.0 } else { 1.0 / k as f32 };
            return vec![p; table.n_rows() * k];
        }
        let inv = 1.0 / self.trees.len() as f32;
        let mut acc = self.pmf_sum_blocks(table);
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Sum of member-tree values per row.
    fn value_sum_blocks(&self, table: &DataTable) -> Vec<f64> {
        self.fold_blocks(table, 1, 0f64, |tree, nodes, acc| {
            for (i, &node) in nodes.iter().enumerate() {
                acc[i] += tree.value_of(node);
            }
        })
    }

    /// Boosted margins per row.
    fn margin_blocks(&self, table: &DataTable) -> Vec<f64> {
        let Combine::Additive { base, eta, .. } = self.combine else {
            unreachable!("caller checked the combine kind");
        };
        self.fold_blocks(table, 1, base, |tree, nodes, acc| {
            for (i, &node) in nodes.iter().enumerate() {
                acc[i] += eta * tree.value_of(node);
            }
        })
    }
}
