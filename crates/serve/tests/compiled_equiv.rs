//! Differential property suite: the compiled batched engine is bit-for-bit
//! identical to the per-row reference traversal.
//!
//! Random trees, forests, and boosted models are trained (or hand-built) on
//! one random table, then evaluated on a *different* random table drawn with
//! a higher categorical cardinality and a positive missing rate — so the
//! evaluation rows exercise every Appendix-D stopping rule: depth caps,
//! missing numeric values (NaN), missing categorical codes, and categorical
//! codes never seen during training. Equality is asserted on the raw bits
//! (`to_bits`), not within a tolerance, across block sizes and thread
//! counts. Replay a failing case with `TS_SEED=<seed>`.

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_serve::{CompiledModel, ServeOptions};
use ts_tree::{train_tree, DecisionTreeModel, ForestModel, TrainParams};
use tscheck::prelude::*;

/// Training table + a shifted evaluation table over the same schema. The
/// evaluation table's categorical columns run over a larger code range
/// (unseen values) and both carry missing entries.
fn table_pair(seed: u64, numeric: usize, categorical: usize, task: Task) -> (DataTable, DataTable) {
    let train = generate(&SynthSpec {
        rows: 400,
        numeric,
        categorical,
        cat_cardinality: 4,
        task,
        missing_rate: 0.05,
        noise: 0.1,
        concept_depth: 4,
        seed,
        ..Default::default()
    });
    let eval = generate(&SynthSpec {
        rows: 257, // deliberately not a multiple of any block size below
        numeric,
        categorical,
        cat_cardinality: 9, // codes 4..9 are unseen by the trained model
        task,
        missing_rate: 0.2,
        noise: 0.1,
        concept_depth: 4,
        seed: seed ^ 0x5EED,
        ..Default::default()
    });
    (train, eval)
}

/// The block/thread grid every equivalence assertion runs over: block
/// boundaries inside the table, a 1-row degenerate block, and both the
/// sequential and fully parallel fan-out.
const GRID: &[(usize, usize)] = &[(4096, 1), (64, 1), (1, 1), (97, 0)];

fn opts(block_rows: usize, threads: usize) -> ServeOptions {
    ServeOptions::default()
        .with_block_rows(block_rows)
        .with_threads(threads)
}

fn assert_bits_f32(fast: &[f32], slow: &[f32], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: row-entry {i}: {a} vs {b}"
        );
    }
}

fn assert_bits_f64(fast: &[f64], slow: &[f64], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: row {i}: {a} vs {b}");
    }
}

fn shape() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..5_000, 1usize..4, 0usize..3)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Single classification tree: labels and PMFs match per row, at every
    /// depth cap, for every block/thread combination.
    #[test]
    fn tree_classification_matches_reference((seed, numeric, categorical) in shape()) {
        let task = Task::Classification { n_classes: 3 };
        let (train, eval) = table_pair(seed, numeric, categorical, task);
        let model = train_tree(
            &train,
            &(0..train.n_attrs()).collect::<Vec<_>>(),
            &TrainParams { dmax: 6, ..TrainParams::for_task(task) },
            seed,
        );
        for cap in [0, 1, 3, u32::MAX] {
            let ref_labels: Vec<u32> = (0..eval.n_rows())
                .map(|r| model.predict_row(&eval, r, cap).label())
                .collect();
            let ref_pmf: Vec<f32> = (0..eval.n_rows())
                .flat_map(|r| model.predict_row(&eval, r, cap).pmf().to_vec())
                .collect();
            for &(block, threads) in GRID {
                let compiled = CompiledModel::from_tree(&model)
                    .with_options(opts(block, threads).with_max_depth(cap));
                prop_assert_eq!(&compiled.predict_labels(&eval), &ref_labels);
                assert_bits_f32(
                    &compiled.predict_pmf_flat(&eval),
                    &ref_pmf,
                    &format!("tree pmf cap={cap} block={block} threads={threads}"),
                );
            }
        }
    }

    /// Single regression tree: values match bitwise.
    #[test]
    fn tree_regression_matches_reference((seed, numeric, categorical) in shape()) {
        let (train, eval) = table_pair(seed, numeric, categorical, Task::Regression);
        let model = train_tree(
            &train,
            &(0..train.n_attrs()).collect::<Vec<_>>(),
            &TrainParams { dmax: 6, ..TrainParams::for_task(Task::Regression) },
            seed,
        );
        let reference = model.predict_values_reference(&eval);
        for &(block, threads) in GRID {
            let compiled = CompiledModel::from_tree(&model).with_options(opts(block, threads));
            assert_bits_f64(
                &compiled.predict_values(&eval),
                &reference,
                &format!("tree values block={block} threads={threads}"),
            );
        }
    }

    /// Bagged classification forest: averaged PMFs and argmax labels match
    /// the reference fold (same tree order, same f32 accumulation).
    #[test]
    fn forest_classification_matches_reference((seed, numeric, categorical) in shape()) {
        let task = Task::Classification { n_classes: 3 };
        let (train, eval) = table_pair(seed, numeric, categorical, task);
        let n_attrs = train.n_attrs();
        let trees: Vec<DecisionTreeModel> = (0..5)
            .map(|i| {
                let cands: Vec<usize> = (0..n_attrs).filter(|a| (a + i) % 2 == 0 || n_attrs == 1).collect();
                let cands = if cands.is_empty() { vec![i % n_attrs] } else { cands };
                train_tree(
                    &train,
                    &cands,
                    &TrainParams { dmax: 5, ..TrainParams::for_task(task) },
                    seed ^ i as u64,
                )
            })
            .collect();
        let forest = ForestModel::new(trees, task);
        let ref_pmf: Vec<f32> = forest
            .predict_pmf_reference(&eval)
            .into_iter()
            .flatten()
            .collect();
        let ref_labels = forest.predict_labels_reference(&eval);
        for &(block, threads) in GRID {
            let compiled = CompiledModel::from_forest(&forest).with_options(opts(block, threads));
            assert_bits_f32(
                &compiled.predict_pmf_flat(&eval),
                &ref_pmf,
                &format!("forest pmf block={block} threads={threads}"),
            );
            prop_assert_eq!(&compiled.predict_labels(&eval), &ref_labels);
        }
        // The ForestModel methods themselves ride the compiled path; they
        // must agree with their own reference variants too.
        prop_assert_eq!(forest.predict_labels(&eval), ref_labels);
    }

    /// Bagged regression forest: averaged values match bitwise.
    #[test]
    fn forest_regression_matches_reference((seed, numeric, categorical) in shape()) {
        let (train, eval) = table_pair(seed, numeric, categorical, Task::Regression);
        let trees: Vec<DecisionTreeModel> = (0..4)
            .map(|i| {
                train_tree(
                    &train,
                    &(0..train.n_attrs()).collect::<Vec<_>>(),
                    &TrainParams { dmax: 5, ..TrainParams::for_task(Task::Regression) },
                    seed ^ (i as u64) << 4,
                )
            })
            .collect();
        let forest = ForestModel::new(trees, Task::Regression);
        let reference = forest.predict_values_reference(&eval);
        for &(block, threads) in GRID {
            let compiled = CompiledModel::from_forest(&forest).with_options(opts(block, threads));
            assert_bits_f64(
                &compiled.predict_values(&eval),
                &reference,
                &format!("forest values block={block} threads={threads}"),
            );
        }
        assert_bits_f64(&forest.predict_values(&eval), &reference, "ForestModel::predict_values");
    }

    /// Boosted additive model: margins (base + η·Σ tree) match bitwise —
    /// the per-row addition sequence is the reference's tree order.
    #[test]
    fn gbt_margins_match_reference((seed, numeric, categorical) in shape()) {
        let (train, eval) = table_pair(seed, numeric, categorical, Task::Regression);
        let trees: Vec<DecisionTreeModel> = (0..5)
            .map(|i| {
                train_tree(
                    &train,
                    &(0..train.n_attrs()).collect::<Vec<_>>(),
                    &TrainParams { dmax: 4, ..TrainParams::for_task(Task::Regression) },
                    seed.wrapping_mul(31) ^ i as u64,
                )
            })
            .collect();
        let gbt = treeserver::GbtModel {
            trees,
            base: 0.125 + seed as f64 * 1e-6,
            eta: 0.3,
            objective: treeserver::GbtObjective::SquaredError,
        };
        let reference = gbt.predict_margins_reference(&eval);
        for &(block, threads) in GRID {
            let compiled = CompiledModel::from_gbt(&gbt).with_options(opts(block, threads));
            assert_bits_f64(
                &compiled.predict_margins(&eval),
                &reference,
                &format!("gbt margins block={block} threads={threads}"),
            );
        }
        assert_bits_f64(&gbt.predict_margins(&eval), &reference, "GbtModel::predict_margins");
    }

    /// A dmax=0 training run yields a single-node tree; the compiled engine
    /// must serve it (every row stops at the root).
    #[test]
    fn single_node_tree_matches_reference(seed in 0u64..2_000) {
        let task = Task::Classification { n_classes: 3 };
        let (train, eval) = table_pair(seed, 2, 1, task);
        let model = train_tree(
            &train,
            &(0..train.n_attrs()).collect::<Vec<_>>(),
            &TrainParams { dmax: 0, ..TrainParams::for_task(task) },
            seed,
        );
        prop_assert_eq!(model.n_nodes(), 1);
        let compiled = CompiledModel::from_tree(&model).with_options(opts(7, 1));
        prop_assert_eq!(
            compiled.predict_labels(&eval),
            model.predict_labels_reference(&eval)
        );
    }
}

/// Thresholds adjacent to the stored split value: rows exactly at, just
/// below, and just above a threshold must route identically (the compiled
/// comparison is the same `x <= thr` on the same f64 bits), and NaN stops.
#[test]
fn nan_adjacent_thresholds_route_identically() {
    let task = Task::Classification { n_classes: 2 };
    let train = generate(&SynthSpec {
        rows: 300,
        numeric: 2,
        task,
        seed: 77,
        concept_depth: 3,
        ..Default::default()
    });
    let model = train_tree(
        &train,
        &[0, 1],
        &TrainParams {
            dmax: 4,
            ..TrainParams::for_task(task)
        },
        7,
    );
    // Collect every numeric threshold in the tree and build probe rows at
    // thr, nextafter-style neighbours, and NaN.
    let mut probes: Vec<f64> = vec![f64::NAN, 0.0, -0.0];
    for node in &model.nodes {
        if let Some((info, _, _)) = &node.split {
            if let ts_splits::SplitTest::NumericLe(v) = info.test {
                probes.push(v);
                probes.push(f64::from_bits(v.to_bits().wrapping_add(1)));
                probes.push(f64::from_bits(v.to_bits().wrapping_sub(1)));
            }
        }
    }
    let n = probes.len();
    let eval = DataTable::new(
        train.schema().clone(),
        vec![
            ts_datatable::Column::Numeric(probes.clone()),
            ts_datatable::Column::Numeric(probes.iter().rev().copied().collect()),
        ],
        ts_datatable::Labels::Class(vec![0; n]),
    );
    let compiled = CompiledModel::from_tree(&model).with_options(opts(3, 1));
    assert_eq!(
        compiled.predict_labels(&eval),
        model.predict_labels_reference(&eval)
    );
    let fast = compiled.predict_pmf_flat(&eval);
    let slow: Vec<f32> = (0..n)
        .flat_map(|r| model.predict_row(&eval, r, u32::MAX).pmf().to_vec())
        .collect();
    assert_bits_f32(&fast, &slow, "nan-adjacent pmf");
}

/// The serving stats sink observes every predict call.
#[test]
fn stats_count_batches_and_rows() {
    let task = Task::Classification { n_classes: 3 };
    let (train, eval) = table_pair(5, 2, 1, task);
    let model = train_tree(&train, &[0, 1, 2], &TrainParams::for_task(task), 5);
    let stats = std::sync::Arc::new(ts_serve::ServeStats::new());
    let compiled = CompiledModel::from_tree(&model).with_stats(std::sync::Arc::clone(&stats));
    compiled.predict_labels(&eval);
    compiled.predict_pmf_flat(&eval);
    assert_eq!(stats.batches(), 2);
    assert_eq!(stats.rows(), 2 * eval.n_rows() as u64);
    assert!(stats.to_json().contains("serve_batches"));
}

/// Regression: 0-row and 1-row tables through the instrumented engine.
/// Both must score cleanly (empty/singleton outputs), be recorded as
/// batches, and keep every derived stats ratio finite — the serving-tier
/// front cuts 1-row batches on deadline flushes, so this path is hot.
#[test]
fn stats_survive_zero_and_one_row_batches() {
    let task = Task::Classification { n_classes: 3 };
    let (train, eval) = table_pair(11, 2, 1, task);
    let model = train_tree(&train, &[0, 1, 2], &TrainParams::for_task(task), 11);
    let stats = std::sync::Arc::new(ts_serve::ServeStats::new());
    let compiled = CompiledModel::from_tree(&model).with_stats(std::sync::Arc::clone(&stats));

    let empty = eval.select_rows(&[]);
    assert_eq!(empty.n_rows(), 0);
    assert!(compiled.predict_labels(&empty).is_empty());
    assert!(compiled.predict_pmf_flat(&empty).is_empty());

    let one = eval.select_rows(&[7]);
    let lone = compiled.predict_labels(&one);
    assert_eq!(lone.len(), 1);
    assert_eq!(lone[0], model.predict_labels_reference(&eval)[7]);

    assert_eq!(stats.batches(), 3);
    assert_eq!(stats.rows(), 1);
    let sum = stats.summary();
    assert!(sum.mean_batch_rows.is_finite());
    assert!(sum.mean_latency_us.is_finite());
    assert!(sum.rows_per_sec.is_finite());
    assert!((sum.mean_batch_rows - 1.0 / 3.0).abs() < 1e-12);
}
