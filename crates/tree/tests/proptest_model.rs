//! Property tests for tree models: prediction semantics, canonicalisation
//! and grafting hold for arbitrary trained trees.

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::Task;
use ts_tree::{train_subtree, train_tree, LocalDataset, TrainMode, TrainParams};
use tscheck::prelude::*;

fn any_spec() -> impl Strategy<Value = SynthSpec> {
    (
        100usize..800,
        1usize..5,
        0usize..3,
        0u64..10_000,
        any::<bool>(),
        prop_oneof![Just(0.0f64), Just(0.1f64)],
    )
        .prop_map(
            |(rows, numeric, categorical, seed, regression, missing_rate)| SynthSpec {
                rows,
                numeric,
                categorical,
                cat_cardinality: 5,
                task: if regression {
                    Task::Regression
                } else {
                    Task::Classification { n_classes: 3 }
                },
                missing_rate,
                noise: 0.1,
                concept_depth: 4,
                latent: 0,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Canonicalisation is idempotent and preserves prediction behaviour.
    #[test]
    fn canonicalize_preserves_predictions(spec in any_spec()) {
        let t = generate(&spec);
        let model = train_tree(
            &t,
            &(0..t.n_attrs()).collect::<Vec<_>>(),
            &TrainParams { dmax: 6, ..TrainParams::for_task(t.schema().task) },
            0,
        );
        let canon = model.canonicalize();
        prop_assert_eq!(canon.canonicalize(), canon.clone());
        prop_assert_eq!(canon.n_nodes(), model.n_nodes());
        prop_assert_eq!(canon.n_leaves(), model.n_leaves());
        for row in (0..t.n_rows()).step_by(17) {
            prop_assert_eq!(
                model.predict_row(&t, row, u32::MAX),
                canon.predict_row(&t, row, u32::MAX)
            );
        }
    }

    /// Depth-capped prediction equals full prediction once the cap reaches
    /// the tree's depth, and every cap produces a valid prediction.
    #[test]
    fn depth_cap_semantics(spec in any_spec()) {
        let t = generate(&spec);
        let model = train_tree(
            &t,
            &(0..t.n_attrs()).collect::<Vec<_>>(),
            &TrainParams { dmax: 8, ..TrainParams::for_task(t.schema().task) },
            0,
        );
        let d = model.max_depth();
        for row in (0..t.n_rows()).step_by(29) {
            let full = model.predict_row(&t, row, u32::MAX);
            prop_assert_eq!(model.predict_row(&t, row, d), full);
            for cap in 0..=d.min(4) {
                let _ = model.predict_row(&t, row, cap); // must not panic
            }
        }
    }

    /// JSON round-trips any trained model exactly.
    #[test]
    fn json_roundtrip_any_model(spec in any_spec()) {
        let t = generate(&spec);
        let model = train_tree(
            &t,
            &(0..t.n_attrs()).collect::<Vec<_>>(),
            &TrainParams { dmax: 5, ..TrainParams::for_task(t.schema().task) },
            0,
        );
        let back = ts_tree::DecisionTreeModel::from_json(&model.to_json()).unwrap();
        prop_assert_eq!(back, model);
    }

    /// Grafting a subtree trained on a leaf's rows reproduces what training
    /// deeper would have produced at that leaf (the subtree-task contract).
    #[test]
    fn graft_matches_deeper_training(seed in 0u64..500) {
        let t = generate(&SynthSpec {
            rows: 600,
            numeric: 3,
            categorical: 1,
            cat_cardinality: 4,
            noise: 0.05,
            concept_depth: 5,
            seed,
            ..Default::default()
        });
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let params_deep = TrainParams { dmax: 6, ..TrainParams::for_task(t.schema().task) };
        let deep = train_tree(&t, &all, &params_deep, 0);

        // Train shallow (depth 2), then graft subtree-task results onto
        // every depth-2 leaf that deep training would have split.
        let params_shallow = TrainParams { dmax: 2, ..params_deep };
        let mut shallow = train_tree(&t, &all, &params_shallow, 0);

        // Recover each shallow leaf's row set by routing all rows.
        let mut rows_of_node: Vec<Vec<u32>> = vec![Vec::new(); shallow.n_nodes()];
        for row in 0..t.n_rows() {
            let mut i = 0usize;
            loop {
                match &shallow.nodes[i].split {
                    None => break,
                    Some((info, l, r)) => {
                        let v = t.value(row, info.attr);
                        let left = info.test.goes_left(v).unwrap_or(info.missing_left);
                        i = if left { *l } else { *r };
                    }
                }
            }
            rows_of_node[i].push(row as u32);
        }
        let leaf_ids: Vec<usize> =
            (0..shallow.n_nodes()).filter(|&i| shallow.nodes[i].is_leaf()).collect();
        for leaf in leaf_ids {
            let rows = &rows_of_node[leaf];
            if rows.is_empty() {
                continue;
            }
            let data = LocalDataset::from_table_rows(&t, &all, rows);
            let depth = shallow.nodes[leaf].depth;
            let sub = train_subtree(&data, &params_deep, depth, 0);
            shallow.graft(leaf, sub);
        }
        prop_assert_eq!(shallow.canonicalize(), deep.canonicalize());
    }

    /// Extra-trees respect dmax/tau_leaf and remain valid models.
    #[test]
    fn extra_trees_invariants(seed in 0u64..300) {
        let t = generate(&SynthSpec { rows: 400, numeric: 3, seed, ..Default::default() });
        let params = TrainParams {
            dmax: 5,
            tau_leaf: 10,
            mode: TrainMode::ExtraTrees,
            ..TrainParams::for_task(t.schema().task)
        };
        let m = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, seed);
        prop_assert!(m.max_depth() <= 5);
        for n in &m.nodes {
            if !n.is_leaf() {
                prop_assert!(n.n_rows > 10);
            }
        }
    }
}
