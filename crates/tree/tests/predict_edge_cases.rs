//! Batch-prediction edge cases: degenerate tables and degenerate models
//! must be well-defined on both the compiled and the reference paths.

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{AttrMeta, Column, DataTable, Labels, Schema, Task, MISSING_CAT};
use ts_tree::{train_tree, CompiledTree, ForestModel, TableView, TrainParams};

fn trained_classifier() -> (ts_tree::DecisionTreeModel, DataTable) {
    let t = generate(&SynthSpec {
        rows: 500,
        numeric: 2,
        categorical: 1,
        cat_cardinality: 4,
        seed: 42,
        concept_depth: 3,
        ..Default::default()
    });
    let m = train_tree(
        &t,
        &(0..t.n_attrs()).collect::<Vec<_>>(),
        &TrainParams::for_task(t.schema().task),
        0,
    );
    (m, t)
}

/// A table over `schema_of`'s schema with the given columns.
fn table_like(src: &DataTable, cols: Vec<Column>, n: usize) -> DataTable {
    DataTable::new(
        src.schema().clone(),
        cols,
        match src.schema().task {
            Task::Classification { .. } => Labels::Class(vec![0; n]),
            Task::Regression => Labels::Real(vec![0.0; n]),
        },
    )
}

#[test]
fn empty_batch_predicts_empty() {
    let (m, t) = trained_classifier();
    let empty = table_like(
        &t,
        vec![
            Column::Numeric(vec![]),
            Column::Numeric(vec![]),
            Column::Categorical(vec![]),
        ],
        0,
    );
    assert_eq!(m.predict_labels(&empty), Vec::<u32>::new());
    assert_eq!(m.predict_labels_reference(&empty), Vec::<u32>::new());
    let f = ForestModel::new(vec![m], t.schema().task);
    assert_eq!(f.predict_labels(&empty), Vec::<u32>::new());
    assert!(f.predict_pmf(&empty).is_empty());
}

#[test]
fn single_row_batch_matches_per_row_walk() {
    let (m, t) = trained_classifier();
    let one = table_like(
        &t,
        vec![
            Column::Numeric(vec![0.3]),
            Column::Numeric(vec![-1.2]),
            Column::Categorical(vec![2]),
        ],
        1,
    );
    let batch = m.predict_labels(&one);
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0], m.predict_row(&one, 0, u32::MAX).label());
}

#[test]
fn all_missing_column_stops_at_first_test_on_it() {
    let (m, t) = trained_classifier();
    let n = 9;
    // Every value of every column missing: each row stops at the first
    // split it reaches — i.e. the root — on both paths.
    let all_missing = table_like(
        &t,
        vec![
            Column::Numeric(vec![f64::NAN; n]),
            Column::Numeric(vec![f64::NAN; n]),
            Column::Categorical(vec![MISSING_CAT; n]),
        ],
        n,
    );
    let compiled = CompiledTree::compile(&m);
    let view = TableView::of(&all_missing);
    let mut img = view.image();
    img.fill(0, n);
    let mut nodes = vec![0u32; n];
    compiled.terminal_nodes_into(&img, u32::MAX, &mut nodes);
    assert!(nodes.iter().all(|&id| id == 0), "all rows stop at the root");
    let reference = m.predict_labels_reference(&all_missing);
    assert_eq!(m.predict_labels(&all_missing), reference);
    assert_eq!(
        reference,
        vec![m.predict_row(&all_missing, 0, 0).label(); n]
    );
}

#[test]
fn zero_tree_forest_predictions_are_defined() {
    let schema = Schema::new(
        vec![AttrMeta::numeric("x")],
        Task::Classification { n_classes: 4 },
    );
    let t = DataTable::new(
        schema,
        vec![Column::Numeric(vec![1.0, 2.0, 3.0])],
        Labels::Class(vec![0; 3]),
    );
    let f = ForestModel::new(vec![], Task::Classification { n_classes: 4 });
    assert_eq!(f.predict_labels(&t), vec![0, 0, 0]);
    for pmf in f.predict_pmf(&t) {
        assert_eq!(pmf, vec![0.25; 4]);
    }
    let reg = ForestModel::new(vec![], Task::Regression);
    let rt = DataTable::new(
        Schema::new(vec![AttrMeta::numeric("x")], Task::Regression),
        vec![Column::Numeric(vec![1.0, 2.0])],
        Labels::Real(vec![0.0; 2]),
    );
    assert_eq!(reg.predict_values(&rt), vec![0.0, 0.0]);
    assert_eq!(reg.predict_values_reference(&rt), vec![0.0, 0.0]);
}
