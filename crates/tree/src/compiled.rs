//! Flat, structure-of-arrays compilation of a [`DecisionTreeModel`] and the
//! batched evaluator over it.
//!
//! `Tree::predict_with` walks pointer-chasing `Node` enums one row at a
//! time: every step loads a ~200-byte `Node` (nested `Option`s, `Vec`s,
//! `SplitInfo`), constructs a [`Value`](ts_datatable::Value) through a
//! closure, and branches on enum tags. That is fine for accuracy checks and
//! hopeless for serving. [`CompiledTree`] flattens the arena once into a
//! serving layout:
//!
//! - nodes renumbered **breadth-first** so each level is contiguous and
//!   siblings are adjacent (`right = left + 1` — the right-child pointer
//!   disappears and numeric descent is branchless: `left + (x > thr)`);
//! - the hot per-node fields packed into one 16-byte record (split kind +
//!   feature id in a `u32`, left-child id, `f64` threshold), so each
//!   traversal step touches a single cache line of tree data plus one raw
//!   column value;
//! - all categorical sets concatenated in one pool, and all node payloads
//!   (labels, PMF rows, means) in contiguous buffers indexed by node id.
//!
//! Whole tables are scored in row blocks ([`DEFAULT_BLOCK_ROWS`]); within a
//! block each row's walk runs entirely in registers.
//!
//! The compiled path is **bit-for-bit identical** to the reference
//! traversal (`crates/serve/tests/compiled_equiv.rs` enforces this): the
//! Appendix-D stopping rules — depth cap, missing value, unseen categorical
//! code — are evaluated in the same order with the same comparisons, and
//! every consumer that aggregates over trees (forest PMF averaging, GBT
//! margin accumulation) folds per-row results in the same tree order with
//! the same arithmetic expressions as the reference implementation.

use crate::model::{DecisionTreeModel, Prediction};
use ts_datatable::{Column, DataTable, Task, MISSING_CAT};
use ts_splits::SplitTest;

/// Node kind tags, stored in the top two bits of [`HotNode::kind_feat`].
/// Bit 31 means "categorical" — `kind_feat >> 31` is the branchless
/// is-categorical predicate the fast path selects on.
const KIND_LEAF: u32 = 0;
const KIND_NUM: u32 = 1;
/// Categorical split whose left-set and seen-set fit 64-bit masks.
const KIND_CAT: u32 = 2;
/// Categorical split with codes ≥ 64; always resolved via the pool.
const KIND_CAT_BIG: u32 = 3;
const KIND_SHIFT: u32 = 30;
const FEAT_MASK: u32 = (1 << KIND_SHIFT) - 1;

/// Sentinel for "no seen-set recorded" in [`CompiledTree::seen_range`].
const NO_SEEN: u32 = u32::MAX;

/// Default row-block size for the whole-table helpers: big enough to
/// amortise per-block setup, small enough that the block's
/// [`BlockImage`] stays L2-resident while the walk re-reads it
/// `levels × trees` times (2048 rows × 10 columns ≈ 160 KiB).
pub const DEFAULT_BLOCK_ROWS: usize = 2048;

/// Rows walked in lockstep by the uncapped traversal. One row's walk is a
/// serial chain of dependent loads; this many independent chains keep the
/// pipeline fed. Raising it further mostly adds register pressure.
const INTERLEAVE: usize = 16;

/// The 16 bytes of tree data a traversal step reads.
#[derive(Debug, Clone, Copy)]
struct HotNode {
    /// [`Self::kind_feat`] in the low half and [`Self::left`] in the high
    /// half, packed so a step fetches both with a single 8-byte load.
    kf_left: u64,
    /// [`KIND_NUM`] and [`KIND_LEAF`]: the threshold as a [`sort_key`]
    /// (leaves use the `+∞` key, so the numeric step computation
    /// self-loops). [`KIND_CAT`]: the left-set as a 64-bit mask.
    aux: u64,
}

impl HotNode {
    fn new(kind_feat: u32, left: u32, aux: u64) -> HotNode {
        HotNode {
            kf_left: u64::from(kind_feat) | u64::from(left) << 32,
            aux,
        }
    }

    /// Split kind in the top 2 bits, feature id in the low 30.
    #[inline(always)]
    fn kind_feat(self) -> u32 {
        self.kf_left as u32
    }

    /// Left-child node id; the right child is always `left + 1`. Leaves
    /// store their **own** id here, turning the leaf step into a
    /// self-loop with no leaf branch on the fast path.
    #[inline(always)]
    fn left(self) -> u32 {
        (self.kf_left >> 32) as u32
    }
}

/// Maps an `f64` bit pattern to a `u64` whose **unsigned** order matches
/// IEEE `<` on the underlying doubles (NaNs excluded): non-negative values
/// get the sign bit set, negative values are bitwise inverted. Comparing
/// keys lets the traversal step run entirely on the integer ALUs — no
/// float compares, whose two-`ucomisd` NaN dance bottlenecks one port.
///
/// `x > thr ⟺ sort_key(x) > sort_key(thr)` for every non-NaN `x` provided
/// `thr` is not `-0.0` (the one pair IEEE treats as equal but the keys
/// order); `compile` normalises `-0.0` thresholds to `+0.0`, which is
/// decision-preserving since `x > -0.0 ⟺ x > +0.0` for all `x`.
#[inline(always)]
const fn sort_key(bits: u64) -> u64 {
    bits ^ ((((bits as i64) >> 63) as u64) | 1 << 63)
}

/// Key of `+∞` — the top of the non-NaN key range. The unified image maps
/// every NaN cell (either sign) to [`KEY_MISSING`]`> KEY_POS_INF`, so the
/// traversal step detects a missing numeric value with a single compare.
const KEY_POS_INF: u64 = sort_key(f64::INFINITY.to_bits());
const KEY_MISSING: u64 = u64::MAX;

/// A [`DataTable`] prepared for traversal: borrowed raw column slices plus
/// a per-column kind vector. Traversal reads cells through a
/// [`BlockImage`] — a **unified** row-major `u64` image of one row block —
/// built via [`TableView::image`] / [`BlockImage::fill`].
pub struct TableView<'a> {
    cols: Vec<ColView<'a>>,
    /// Per column: 1 if categorical, 0 if numeric.
    col_cat: Vec<u32>,
    n_rows: usize,
}

/// One borrowed column.
pub enum ColView<'a> {
    /// Raw numeric values (`NaN` = missing).
    Num(&'a [f64]),
    /// Raw categorical codes ([`MISSING_CAT`] = missing).
    Cat(&'a [u32]),
}

impl<'a> TableView<'a> {
    /// Borrows every column of `table`.
    pub fn of(table: &'a DataTable) -> TableView<'a> {
        let n_rows = table.n_rows();
        let cols: Vec<ColView<'a>> = table
            .columns()
            .iter()
            .map(|c| match c {
                Column::Numeric(v) => ColView::Num(v),
                Column::Categorical(v) => ColView::Cat(v),
            })
            .collect();
        let col_cat: Vec<u32> = cols
            .iter()
            .map(|c| match c {
                ColView::Num(_) => 0,
                ColView::Cat(_) => 1,
            })
            .collect();
        TableView {
            cols,
            col_cat,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// An empty [`BlockImage`] over this view; [`BlockImage::fill`] it
    /// with a row block before traversing.
    pub fn image<'v>(&'v self) -> BlockImage<'v, 'a> {
        BlockImage {
            view: self,
            first_row: 0,
            len: 0,
            cells: Vec::new(),
        }
    }
}

/// The unified `u64` image of one row block of a [`TableView`]:
/// [`sort_key`]s for numeric cells (NaNs canonicalised to
/// [`KEY_MISSING`]), one-hot bits (`1 << code`) for categorical cells —
/// codes the 64-bit mask can't express (missing, or ≥ 64) encode to
/// zero — row-major.
/// It lets the fast traversal step load any column with one untyped
/// 8-byte read instead of dispatching on the column kind.
///
/// Imaging **per block** rather than per table keeps the walk's working
/// set cache-resident: the block's cells are written hot just before the
/// walk reads them `levels × trees` times, instead of a whole-table image
/// streaming through and out of cache before its first use. The buffer is
/// reused across [`Self::fill`] calls, so a block loop performs one
/// allocation total.
pub struct BlockImage<'v, 'a> {
    view: &'v TableView<'a>,
    first_row: usize,
    len: usize,
    cells: Vec<u64>,
}

impl<'v, 'a> BlockImage<'v, 'a> {
    /// Rebuilds this image over rows `[first_row, first_row + len)` of
    /// its view. One linear pass: the numeric key transform runs once per
    /// cell here instead of `levels × trees` times in the walk.
    pub fn fill(&mut self, first_row: usize, len: usize) {
        assert!(first_row + len <= self.view.n_rows);
        let n_cols = self.view.cols.len();
        self.first_row = first_row;
        self.len = len;
        self.cells.clear();
        self.cells.reserve(n_cols * len);
        // Column-outer fill within L1-sized row tiles: each inner loop is
        // monomorphic and branch-free (no per-cell kind dispatch), reading
        // its source column sequentially; writing through
        // `spare_capacity_mut` skips a `vec![0; ..]` memset. The tile
        // bounds how often a destination cache line is revisited — the
        // column passes of one tile all hit the same ~32 KB of image, so
        // each line is written back once instead of once per column.
        let spare = &mut self.cells.spare_capacity_mut()[..n_cols * len];
        let tile = (4096 / n_cols.max(1)).max(64);
        for (t, chunk) in spare.chunks_mut(tile * n_cols.max(1)).enumerate() {
            let r0 = first_row + t * tile;
            let rows = chunk.len() / n_cols.max(1);
            for (ci, col) in self.view.cols.iter().enumerate() {
                let dst = chunk[ci..].iter_mut().step_by(n_cols.max(1));
                match col {
                    ColView::Num(v) => {
                        for (d, x) in dst.zip(&v[r0..r0 + rows]) {
                            let b = x.to_bits();
                            // Either-sign NaN canonicalises to
                            // KEY_MISSING without a data branch
                            // (`KEY_MISSING * 1` is all-ones, `* 0` a
                            // no-op mask).
                            let nan = u64::from(b & !(1 << 63) > f64::INFINITY.to_bits());
                            d.write(sort_key(b) | (KEY_MISSING * nan));
                        }
                    }
                    ColView::Cat(v) => {
                        for (d, &code) in dst.zip(&v[r0..r0 + rows]) {
                            // One-hot: the step tests set membership with
                            // a single AND. Codes the mask can't express —
                            // ≥ 64, including MISSING_CAT — encode to
                            // zero, the step's escape marker (a real code
                            // < 64 never encodes to zero).
                            d.write(1u64.wrapping_shl(code) & u64::from(code < 64).wrapping_neg());
                        }
                    }
                }
            }
        }
        // SAFETY: the loops above initialised all `n_cols * len` cells:
        // every index `r * n_cols + ci` is covered exactly once.
        unsafe { self.cells.set_len(n_cols * len) };
    }

    /// First row of the imaged block.
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Number of imaged rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the imaged block is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-node prediction payloads, stored contiguously across all nodes
/// (internal nodes carry predictions too — traversal can stop anywhere).
#[derive(Debug, Clone)]
pub enum Payload {
    /// Classification: majority label per node plus one `k`-wide PMF row
    /// per node in `pmf` (node-major).
    Class {
        /// Number of classes (PMF width).
        k: usize,
        /// Majority label per node.
        labels: Vec<u32>,
        /// `n_nodes * k` PMF entries, node-major.
        pmf: Vec<f32>,
    },
    /// Regression: mean target per node.
    Real(Vec<f64>),
}

/// A tree flattened into the breadth-first serving layout. Node ids are
/// compiled ids (BFS order, root = 0), not arena indices.
#[derive(Debug, Clone)]
pub struct CompiledTree {
    hot: Vec<HotNode>,
    /// Node depth, read only on the capped traversal path.
    depth: Vec<u32>,
    /// `[start, end)` into `pool` for a categorical node's left-set.
    set_range: Vec<(u32, u32)>,
    /// `[start, end)` into `pool` for a categorical node's seen-set, or
    /// `(NO_SEEN, NO_SEEN)` when the node recorded none.
    seen_range: Vec<(u32, u32)>,
    /// Per-node seen-set as a 64-bit mask ([`KIND_CAT`] nodes; all-ones
    /// when no seen-set was recorded, so the unseen check never fires).
    seen_mask: Vec<u64>,
    /// All categorical sets, concatenated (each slice stays sorted).
    pool: Vec<u32>,
    /// Depth of the deepest reachable node = number of traversal steps
    /// that suffice for any row (the interleaved walk runs exactly this
    /// many level iterations).
    max_node_depth: u32,
    payload: Payload,
    task: Task,
}

impl CompiledTree {
    /// Flattens `model` into the compiled layout.
    ///
    /// # Panics
    /// Panics if a node's prediction kind does not match the model's task
    /// (such a model would also panic in the reference traversal).
    pub fn compile(model: &DecisionTreeModel) -> CompiledTree {
        // Breadth-first renumbering; pushing both children together makes
        // every sibling pair adjacent (right = left + 1).
        let mut order: Vec<usize> = Vec::with_capacity(model.nodes.len());
        order.push(0);
        let mut head = 0;
        while head < order.len() {
            if let Some((_, l, r)) = &model.nodes[order[head]].split {
                order.push(*l);
                order.push(*r);
            }
            head += 1;
        }
        let mut new_of = vec![u32::MAX; model.nodes.len()];
        for (new, &arena) in order.iter().enumerate() {
            new_of[arena] = new as u32;
        }

        let n = order.len();
        let mut t = CompiledTree {
            hot: Vec::with_capacity(n),
            depth: Vec::with_capacity(n),
            set_range: vec![(0, 0); n],
            seen_range: vec![(NO_SEEN, NO_SEEN); n],
            seen_mask: vec![0; n],
            pool: Vec::new(),
            max_node_depth: 0,
            payload: match model.task {
                Task::Classification { n_classes } => Payload::Class {
                    k: n_classes as usize,
                    labels: Vec::with_capacity(n),
                    pmf: Vec::with_capacity(n * n_classes as usize),
                },
                Task::Regression => Payload::Real(Vec::with_capacity(n)),
            },
            task: model.task,
        };
        for (new, &arena) in order.iter().enumerate() {
            let node = &model.nodes[arena];
            t.depth.push(node.depth);
            t.max_node_depth = t.max_node_depth.max(node.depth);
            match &node.split {
                // Leaf: a numeric-style self-loop (the `+∞` key never
                // sends a row right, `left = self` keeps it in place), so
                // the fast path needs no leaf branch at all.
                None => t.hot.push(HotNode::new(
                    KIND_LEAF << KIND_SHIFT,
                    new as u32,
                    KEY_POS_INF,
                )),
                Some((info, l, _)) => {
                    let feat = info.attr as u32;
                    debug_assert!(feat <= FEAT_MASK, "feature id overflows the packed layout");
                    let left = new_of[*l];
                    match &info.test {
                        SplitTest::NumericLe(v) => t.hot.push(HotNode::new(
                            (KIND_NUM << KIND_SHIFT) | feat,
                            left,
                            // `v + 0.0` normalises a -0.0 threshold to
                            // +0.0 (see `sort_key`); every other value is
                            // unchanged.
                            sort_key((*v + 0.0).to_bits()),
                        )),
                        SplitTest::CatIn(set) => {
                            t.set_range[new] = push_pool(&mut t.pool, set);
                            let mut big = set.iter().any(|&c| c >= 64);
                            if let Some(seen) = &info.seen {
                                t.seen_range[new] = push_pool(&mut t.pool, seen);
                                big |= seen.iter().any(|&c| c >= 64);
                            }
                            // Masks hold the `< 64` part of each set; the
                            // fast step only consults them for row codes
                            // the one-hot image can express (< 64), so
                            // they are exact even for KIND_CAT_BIG nodes
                            // — codes ≥ 64 escape to the pool path.
                            t.seen_mask[new] = match &info.seen {
                                None => u64::MAX,
                                Some(seen) => bits_lo(seen),
                            };
                            let kind = if big { KIND_CAT_BIG } else { KIND_CAT };
                            t.hot.push(HotNode::new(
                                (kind << KIND_SHIFT) | feat,
                                left,
                                bits_lo(set),
                            ));
                        }
                    }
                }
            }
            match (&mut t.payload, &node.prediction) {
                (Payload::Class { k, labels, pmf }, Prediction::Class { label, pmf: p }) => {
                    labels.push(*label);
                    // Pad/truncate to exactly k entries: the reference
                    // accumulation zips against a k-wide accumulator, so
                    // entries past k are never read and short PMFs act as
                    // zeros (trained PMFs are always exactly k wide).
                    pmf.extend((0..*k).map(|c| p.get(c).copied().unwrap_or(0.0)));
                }
                (Payload::Real(values), Prediction::Real(v)) => values.push(*v),
                _ => panic!("node prediction kind does not match the tree's task"),
            }
        }
        t
    }

    /// Number of nodes reachable from the root.
    pub fn n_nodes(&self) -> usize {
        self.hot.len()
    }

    /// The task the source model was trained for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The majority label at `node` (classification payloads).
    pub fn label_of(&self, node: u32) -> u32 {
        match &self.payload {
            Payload::Class { labels, .. } => labels[node as usize],
            Payload::Real(_) => panic!("label_of on a regression tree"),
        }
    }

    /// The PMF row at `node` (classification payloads).
    pub fn pmf_of(&self, node: u32) -> &[f32] {
        match &self.payload {
            Payload::Class { k, pmf, .. } => {
                let o = node as usize * k;
                &pmf[o..o + k]
            }
            Payload::Real(_) => panic!("pmf_of on a regression tree"),
        }
    }

    /// The mean target at `node` (regression payloads).
    pub fn value_of(&self, node: u32) -> f64 {
        match &self.payload {
            Payload::Real(values) => values[node as usize],
            Payload::Class { .. } => panic!("value_of on a classification tree"),
        }
    }

    /// Scores the imaged row block of `img` (see [`BlockImage::fill`]),
    /// writing each row's **terminal node id** (where Appendix-D traversal
    /// stops: a leaf, the depth cap, a missing value, or an unseen
    /// categorical code) into `out` (`out.len() == img.len()`).
    ///
    /// The uncapped case (`max_depth == u32::MAX`, the serving default)
    /// walks [`INTERLEAVE`] rows in lockstep: a single row's walk is
    /// latency-bound — each step's node load depends on the previous one —
    /// so interleaving independent rows lets the chains pipeline. Every
    /// stop state is an idempotent self-loop ([`Self::step`]), so the
    /// lockstep loop runs a fixed `max_node_depth` iterations with no
    /// divergence bookkeeping: rows that stopped early just re-observe
    /// their stop condition.
    ///
    /// The fast path requires every split's feature id to resolve to a
    /// column of the split's kind; that is checked once per call
    /// ([`Self::schema_consistent`]). A mismatched table falls back to the
    /// per-row lazy walk, which panics only when a row actually reaches
    /// the offending node — the reference traversal's exact behaviour.
    pub fn terminal_nodes_into(&self, img: &BlockImage<'_, '_>, max_depth: u32, out: &mut [u32]) {
        assert_eq!(out.len(), img.len);
        if max_depth != u32::MAX || !self.schema_consistent(img.view) {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.walk_row_capped(img.view, img.first_row + i, max_depth);
            }
            return;
        }
        let levels = self.max_node_depth;
        let unified = &img.cells[..];
        let n_cols = img.view.col_cat.len();
        let mut chunks = out.chunks_exact_mut(INTERLEAVE);
        let mut row = 0usize; // block-local
        for chunk in &mut chunks {
            // The lanes are named locals, not an array: an indexed `n[j]`
            // loop compiles to a stack-resident array walked by a genuine
            // inner loop (store/reload per step plus loop control), which
            // measures ~2x slower than keeping each lane's node id in a
            // register.
            let b0 = row * n_cols;
            let (b1, b2, b3) = (b0 + n_cols, b0 + 2 * n_cols, b0 + 3 * n_cols);
            let (b4, b5, b6, b7) = (
                b0 + 4 * n_cols,
                b0 + 5 * n_cols,
                b0 + 6 * n_cols,
                b0 + 7 * n_cols,
            );
            let (b8, b9, b10, b11) = (
                b0 + 8 * n_cols,
                b0 + 9 * n_cols,
                b0 + 10 * n_cols,
                b0 + 11 * n_cols,
            );
            let (b12, b13, b14, b15) = (
                b0 + 12 * n_cols,
                b0 + 13 * n_cols,
                b0 + 14 * n_cols,
                b0 + 15 * n_cols,
            );
            let (mut n0, mut n1, mut n2, mut n3) = (0u32, 0u32, 0u32, 0u32);
            let (mut n4, mut n5, mut n6, mut n7) = (0u32, 0u32, 0u32, 0u32);
            let (mut n8, mut n9, mut n10, mut n11) = (0u32, 0u32, 0u32, 0u32);
            let (mut n12, mut n13, mut n14, mut n15) = (0u32, 0u32, 0u32, 0u32);
            for _ in 0..levels {
                let (p0, p1, p2, p3) = (n0, n1, n2, n3);
                let (p4, p5, p6, p7) = (n4, n5, n6, n7);
                let (p8, p9, p10, p11) = (n8, n9, n10, n11);
                let (p12, p13, p14, p15) = (n12, n13, n14, n15);
                n0 = self.step(img, unified, b0, n0);
                n1 = self.step(img, unified, b1, n1);
                n2 = self.step(img, unified, b2, n2);
                n3 = self.step(img, unified, b3, n3);
                n4 = self.step(img, unified, b4, n4);
                n5 = self.step(img, unified, b5, n5);
                n6 = self.step(img, unified, b6, n6);
                n7 = self.step(img, unified, b7, n7);
                n8 = self.step(img, unified, b8, n8);
                n9 = self.step(img, unified, b9, n9);
                n10 = self.step(img, unified, b10, n10);
                n11 = self.step(img, unified, b11, n11);
                n12 = self.step(img, unified, b12, n12);
                n13 = self.step(img, unified, b13, n13);
                n14 = self.step(img, unified, b14, n14);
                n15 = self.step(img, unified, b15, n15);
                // Every stop state self-loops, so "no lane moved" means
                // all rows of the chunk are done; leaves cluster well
                // above `max_node_depth`, so this usually fires several
                // levels early. (One well-predicted branch per level:
                // not-taken until the final iteration.)
                let moved = (n0 ^ p0)
                    | (n1 ^ p1)
                    | (n2 ^ p2)
                    | (n3 ^ p3)
                    | (n4 ^ p4)
                    | (n5 ^ p5)
                    | (n6 ^ p6)
                    | (n7 ^ p7)
                    | (n8 ^ p8)
                    | (n9 ^ p9)
                    | (n10 ^ p10)
                    | (n11 ^ p11)
                    | (n12 ^ p12)
                    | (n13 ^ p13)
                    | (n14 ^ p14)
                    | (n15 ^ p15);
                if moved == 0 {
                    break;
                }
            }
            chunk.copy_from_slice(&[
                n0, n1, n2, n3, n4, n5, n6, n7, n8, n9, n10, n11, n12, n13, n14, n15,
            ]);
            row += INTERLEAVE;
        }
        for slot in chunks.into_remainder() {
            let mut n = 0u32;
            for _ in 0..levels {
                n = self.step(img, unified, row * n_cols, n);
            }
            *slot = n;
            row += 1;
        }
    }

    /// True when every split node's feature id resolves to a column of the
    /// split's kind in this view — the precondition for [`Self::step`]'s
    /// unchecked column loads. Leaves are exempt (their feature id is a
    /// placeholder; the reference walk never reads a value at a leaf), but
    /// a tree with any split guarantees `n_cols >= 1` so the placeholder
    /// load stays in bounds.
    fn schema_consistent(&self, view: &TableView<'_>) -> bool {
        self.hot.iter().all(|h| {
            let feat = (h.kind_feat() & FEAT_MASK) as usize;
            match h.kind_feat() >> KIND_SHIFT {
                KIND_LEAF => true,
                KIND_NUM => feat < view.col_cat.len() && view.col_cat[feat] == 0,
                _ => feat < view.col_cat.len() && view.col_cat[feat] == 1,
            }
        })
    }

    /// One uncapped traversal step at node `n` for the row whose unified
    /// cells start at `base`: returns the child to descend into, or `n`
    /// itself when traversal stops there — leaf, missing value, or unseen
    /// categorical code. Stopped states are **idempotent**: re-running the
    /// step re-derives the same stop, so callers may apply it any number
    /// of extra times.
    ///
    /// The numeric path (splits and the leaf self-loop) is the unbranched
    /// spine: one 16-byte node load, one untyped column load, an
    /// integer-domain NaN test and [`sort_key`] compare, one add — no
    /// float ops at all. Categorical nodes branch off on the sign bit of
    /// `kind_feat`; pool-resolved cases are outlined in
    /// [`Self::cat_pool_step`].
    ///
    /// # Safety (of the internal unchecked indexing)
    /// - `n` is always a valid node id: it starts at 0 and every
    ///   transition returns either `n` itself or a child id baked in by
    ///   `compile`, all `< n_nodes`.
    /// - column loads are in bounds: the caller verified
    ///   [`Self::schema_consistent`] (every split's feature id `< n_cols`,
    ///   leaf placeholders covered by `n_cols >= 1`) and
    ///   `base = row * n_cols` for a block-local `row < img.len()`, with
    ///   `unified` holding `img.len() * n_cols` cells.
    #[inline(always)]
    fn step(&self, img: &BlockImage<'_, '_>, unified: &[u64], base: usize, n: u32) -> u32 {
        let h = unsafe { *self.hot.get_unchecked(n as usize) };
        let kf = h.kind_feat();
        let w = unsafe { *unified.get_unchecked(base + (kf & FEAT_MASK) as usize) };
        // Branching on the node kind (and on each rare stop outcome) is
        // deliberate: every mask-selected variant measured slower on all
        // tree shapes — the extra select uops cost more than the kind
        // branch's mispredicts, and predicted-not-taken stop branches let
        // the core speculate straight down the serial load chain instead
        // of waiting on cmov inputs.
        if kf >> 31 != 0 {
            // A zero cell is a code the one-hot image can't express
            // (missing, or ≥ 64), resolved on the outlined
            // reference-order path; almost never taken.
            if w == 0 {
                return self.cat_slow_step(img, base, n);
            }
            // SAFETY: `n` is a valid node id (see above); `seen_mask`
            // has one entry per node.
            let seen = unsafe { *self.seen_mask.get_unchecked(n as usize) };
            if w & seen == 0 {
                return n; // code unseen at training time: stop here
            }
            return h.left() + u32::from(w & h.aux == 0);
        }
        if w > KEY_POS_INF {
            return n; // missing numeric value: stop here
        }
        h.left() + u32::from(w > h.aux)
    }

    /// Pool-resolved categorical step for codes the one-hot image encodes
    /// as zero — missing values and codes ≥ 64 — in the reference order:
    /// missing, then unseen, then set membership. Re-reads the true code
    /// from the source column (the image dropped it).
    #[cold]
    fn cat_slow_step(&self, img: &BlockImage<'_, '_>, base: usize, n: u32) -> u32 {
        let n_cols = img.view.cols.len();
        let row = img.first_row + base / n_cols;
        let feat = (self.hot[n as usize].kind_feat() & FEAT_MASK) as usize;
        let ColView::Cat(v) = &img.view.cols[feat] else {
            unreachable!("schema_consistent checked: categorical split, categorical column");
        };
        let c = v[row];
        if c == MISSING_CAT {
            return n; // missing value: stop here
        }
        match self.cat_child(n, c) {
            Some(next) => next,
            None => n, // unseen during training: stop here
        }
    }

    /// One row's walk under an Appendix-D depth cap. The cap is tested
    /// after the leaf check, exactly like the reference traversal.
    fn walk_row_capped(&self, view: &TableView<'_>, row: usize, max_depth: u32) -> u32 {
        let mut n = 0u32;
        loop {
            let h = self.hot[n as usize];
            let kind = h.kind_feat() >> KIND_SHIFT;
            if kind == KIND_LEAF || self.depth[n as usize] >= max_depth {
                return n;
            }
            match &view.cols[(h.kind_feat() & FEAT_MASK) as usize] {
                ColView::Num(v) => {
                    if kind != KIND_NUM {
                        panic!("categorical split applied to numeric value");
                    }
                    let x = v[row];
                    if x.is_nan() {
                        return n;
                    }
                    n = h.left() + u32::from(sort_key(x.to_bits()) > h.aux);
                }
                ColView::Cat(v) => {
                    if kind != KIND_CAT && kind != KIND_CAT_BIG {
                        panic!("numeric split applied to categorical value");
                    }
                    let c = v[row];
                    if c == MISSING_CAT {
                        return n;
                    }
                    match self.cat_child(n, c) {
                        Some(next) => n = next,
                        None => return n,
                    }
                }
            }
        }
    }

    /// Resolves a categorical step at `node` for code `c`: `None` when the
    /// code was unseen during training (stop), otherwise the child id.
    #[inline]
    fn cat_child(&self, node: u32, c: u32) -> Option<u32> {
        let (s0, s1) = self.seen_range[node as usize];
        if s0 != NO_SEEN
            && self.pool[s0 as usize..s1 as usize]
                .binary_search(&c)
                .is_err()
        {
            return None;
        }
        let (a, b) = self.set_range[node as usize];
        let in_set = self.pool[a as usize..b as usize].binary_search(&c).is_ok();
        Some(self.hot[node as usize].left() + u32::from(!in_set))
    }

    /// Class labels for every row of `table` (single-threaded block loop).
    pub fn predict_labels_table(&self, table: &DataTable) -> Vec<u32> {
        let view = TableView::of(table);
        let mut out = Vec::with_capacity(view.n_rows());
        self.for_each_block(&view, u32::MAX, |nodes, _| {
            out.extend(nodes.iter().map(|&n| self.label_of(n)));
        });
        out
    }

    /// Regression values for every row of `table`.
    pub fn predict_values_table(&self, table: &DataTable) -> Vec<f64> {
        let view = TableView::of(table);
        let mut out = Vec::with_capacity(view.n_rows());
        self.for_each_block(&view, u32::MAX, |nodes, _| {
            out.extend(nodes.iter().map(|&n| self.value_of(n)));
        });
        out
    }

    /// Adds this tree's PMF into a row-major accumulator: for every row
    /// `r`, `acc[r*k + c] += pmf[c]` — the same per-row operation order as
    /// the reference forest averaging.
    pub fn accumulate_pmf_table(&self, view: &TableView<'_>, acc: &mut [f32]) {
        let Payload::Class { k, .. } = &self.payload else {
            panic!("accumulate_pmf_table on a regression tree");
        };
        let k = *k;
        debug_assert_eq!(acc.len(), view.n_rows() * k);
        self.for_each_block(view, u32::MAX, |nodes, first| {
            for (i, &node) in nodes.iter().enumerate() {
                let dst = &mut acc[(first + i) * k..(first + i + 1) * k];
                for (a, b) in dst.iter_mut().zip(self.pmf_of(node)) {
                    *a += b;
                }
            }
        });
    }

    /// Adds this tree's value into a per-row accumulator (`acc[r] += v`).
    pub fn accumulate_values_table(&self, view: &TableView<'_>, acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), view.n_rows());
        self.for_each_block(view, u32::MAX, |nodes, first| {
            for (i, &node) in nodes.iter().enumerate() {
                acc[first + i] += self.value_of(node);
            }
        });
    }

    /// GBT margin update: `out[r] += eta * value(r)` for every row — the
    /// same expression the reference margin accumulation evaluates.
    pub fn add_margins_table(&self, view: &TableView<'_>, eta: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), view.n_rows());
        self.for_each_block(view, u32::MAX, |nodes, first| {
            for (i, &node) in nodes.iter().enumerate() {
                out[first + i] += eta * self.value_of(node);
            }
        });
    }

    /// Runs `f(terminal_nodes, first_row)` over the table in
    /// [`DEFAULT_BLOCK_ROWS`]-sized blocks, reusing one scratch buffer and
    /// one [`BlockImage`].
    fn for_each_block(
        &self,
        view: &TableView<'_>,
        max_depth: u32,
        mut f: impl FnMut(&[u32], usize),
    ) {
        let n = view.n_rows();
        let mut nodes = vec![0u32; DEFAULT_BLOCK_ROWS.min(n)];
        let mut img = view.image();
        let mut first = 0;
        while first < n {
            let len = DEFAULT_BLOCK_ROWS.min(n - first);
            img.fill(first, len);
            self.terminal_nodes_into(&img, max_depth, &mut nodes[..len]);
            f(&nodes[..len], first);
            first += len;
        }
    }
}

/// Appends a sorted set to the pool, returning its `[start, end)` range.
fn push_pool(pool: &mut Vec<u32>, set: &[u32]) -> (u32, u32) {
    let start = pool.len() as u32;
    pool.extend_from_slice(set);
    (start, pool.len() as u32)
}

/// The codes `< 64` of a set as a 64-bit mask (higher codes are dropped —
/// they are pool-resolved, never mask-tested).
fn bits_lo(set: &[u32]) -> u64 {
    set.iter()
        .filter(|&&c| c < 64)
        .fold(0u64, |m, &c| m | (1 << c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Node, SplitInfo};
    use ts_datatable::{AttrMeta, Labels, Schema, Value};

    fn mixed_tree() -> DecisionTreeModel {
        let nodes = vec![
            Node {
                split: Some((
                    SplitInfo {
                        attr: 0,
                        test: SplitTest::NumericLe(40.0),
                        gain: 1.0,
                        missing_left: true,
                        seen: None,
                    },
                    1,
                    2,
                )),
                prediction: Prediction::Class {
                    label: 0,
                    pmf: vec![0.7, 0.3],
                },
                n_rows: 10,
                depth: 0,
            },
            Node::leaf(
                Prediction::Class {
                    label: 1,
                    pmf: vec![0.2, 0.8],
                },
                5,
                1,
            ),
            Node {
                split: Some((
                    SplitInfo {
                        attr: 1,
                        test: SplitTest::cat_in(vec![2, 3, 4]),
                        gain: 0.5,
                        missing_left: false,
                        seen: Some(vec![1, 2, 3, 4]),
                    },
                    3,
                    4,
                )),
                prediction: Prediction::Class {
                    label: 0,
                    pmf: vec![0.9, 0.1],
                },
                n_rows: 5,
                depth: 1,
            },
            Node::leaf(
                Prediction::Class {
                    label: 0,
                    pmf: vec![1.0, 0.0],
                },
                3,
                2,
            ),
            Node::leaf(
                Prediction::Class {
                    label: 1,
                    pmf: vec![0.0, 1.0],
                },
                2,
                2,
            ),
        ];
        DecisionTreeModel::new(nodes, Task::Classification { n_classes: 2 })
    }

    fn table() -> DataTable {
        DataTable::new(
            Schema::new(
                vec![AttrMeta::numeric("age"), AttrMeta::categorical("edu", 6)],
                Task::Classification { n_classes: 2 },
            ),
            vec![
                // Rows: descend-left, descend-right-left-set, unseen code,
                // missing numeric, missing categorical, exact threshold.
                Column::Numeric(vec![30.0, 50.0, 50.0, f64::NAN, 50.0, 40.0]),
                Column::Categorical(vec![2, 1, 0, 2, MISSING_CAT, 3]),
            ],
            Labels::Class(vec![0; 6]),
        )
    }

    #[test]
    fn compiled_matches_reference_on_every_stop_rule() {
        let model = mixed_tree();
        let compiled = CompiledTree::compile(&model);
        let t = table();
        let view = TableView::of(&t);
        let mut img = view.image();
        img.fill(0, t.n_rows());
        for cap in [0, 1, 2, u32::MAX] {
            let mut nodes = vec![0u32; t.n_rows()];
            compiled.terminal_nodes_into(&img, cap, &mut nodes);
            for (row, &node) in nodes.iter().enumerate() {
                let reference = model.predict_row(&t, row, cap);
                assert_eq!(
                    compiled.label_of(node),
                    reference.label(),
                    "row {row} cap {cap}"
                );
                assert_eq!(compiled.pmf_of(node), reference.pmf());
            }
        }
    }

    #[test]
    fn siblings_are_adjacent_after_bfs_renumbering() {
        let compiled = CompiledTree::compile(&mixed_tree());
        assert_eq!(compiled.n_nodes(), 5);
        for (id, h) in compiled.hot.iter().enumerate() {
            if h.kind_feat() >> KIND_SHIFT == KIND_LEAF {
                // Leaves self-loop: the +∞ key and left = self.
                assert_eq!(h.left() as usize, id);
                assert_eq!(h.aux, sort_key(f64::INFINITY.to_bits()));
            } else {
                // Children ids were allocated as a pair.
                assert!(h.left() as usize + 1 < compiled.n_nodes());
                assert!(h.left() as usize > id, "children come after the parent");
            }
        }
    }

    #[test]
    fn batch_labels_match_reference_loop() {
        let model = mixed_tree();
        let compiled = CompiledTree::compile(&model);
        let t = table();
        let reference: Vec<u32> = (0..t.n_rows())
            .map(|r| model.predict_row(&t, r, u32::MAX).label())
            .collect();
        assert_eq!(compiled.predict_labels_table(&t), reference);
    }

    #[test]
    fn empty_table_scores_to_empty() {
        let compiled = CompiledTree::compile(&mixed_tree());
        let t = DataTable::new(
            Schema::new(
                vec![AttrMeta::numeric("age"), AttrMeta::categorical("edu", 6)],
                Task::Classification { n_classes: 2 },
            ),
            vec![Column::Numeric(vec![]), Column::Categorical(vec![])],
            Labels::Class(vec![]),
        );
        assert_eq!(compiled.predict_labels_table(&t), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "numeric split applied to categorical value")]
    fn type_mismatch_panics_like_reference() {
        let model = mixed_tree();
        let compiled = CompiledTree::compile(&model);
        // Swap the columns so attr 0 (numeric split) is categorical.
        let t = DataTable::new(
            Schema::new(
                vec![AttrMeta::categorical("edu", 6), AttrMeta::numeric("age")],
                Task::Classification { n_classes: 2 },
            ),
            vec![Column::Categorical(vec![2]), Column::Numeric(vec![30.0])],
            Labels::Class(vec![0]),
        );
        compiled.predict_labels_table(&t);
    }

    #[test]
    fn value_enum_still_matches_column_reads() {
        // Sanity: TableView reads agree with DataTable::value semantics.
        let t = table();
        let view = TableView::of(&t);
        match &view.cols[0] {
            ColView::Num(v) => {
                assert!(v[3].is_nan());
                assert_eq!(t.value(3, 0), Value::Missing);
            }
            ColView::Cat(_) => panic!("attr 0 is numeric"),
        }
    }
}
