//! Decision-tree models and the local exact trainer.
//!
//! This crate holds everything about a *single* tree that is independent of
//! the distributed engine:
//!
//! - [`model`]: the arena-based [`DecisionTreeModel`] with a prediction
//!   stored at **every** node (not just leaves), enabling the paper's
//!   Appendix D features — stop-at-any-depth prediction, and graceful
//!   handling of missing values and categorical values unseen during
//!   training;
//! - [`dataset`]: [`LocalDataset`], the gathered column buffers a
//!   subtree-task assembles from the data it pulls off other workers;
//! - [`trainer`]: the single-threaded exact recursive trainer. The
//!   distributed engine calls this for every subtree-task, and uses the same
//!   split kernels for column-tasks, so a TreeServer cluster and this
//!   trainer produce **identical** trees — the "exact training" guarantee;
//! - [`forest`]: bagged forests ([`ForestModel`]) whose prediction averages
//!   per-tree PMF vectors (classification) or means (regression), exactly
//!   the k-D re-representation deep forest consumes;
//! - [`compiled`]: the flat structure-of-arrays compilation of a tree and
//!   the batched breadth-per-level evaluator. All whole-table prediction
//!   methods delegate to it (bit-identically — see docs/SERVING.md); the
//!   per-row `predict_with`/`predict_row` walk stays the reference
//!   traversal, and `ts-serve` layers batch parallelism and observability
//!   on top.

pub mod compiled;
pub mod dataset;
pub mod forest;
pub mod model;
pub mod trainer;

pub use compiled::{ColView, CompiledTree, TableView};
pub use dataset::LocalDataset;
pub use forest::ForestModel;
pub use model::{graft_nodes, DecisionTreeModel, Node, Prediction, SplitInfo};
pub use trainer::{train_subtree, train_tree, TrainMode, TrainParams};
