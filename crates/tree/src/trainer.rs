//! The single-threaded exact recursive trainer.
//!
//! This is the code a subtree-task runs on its key worker: given the
//! materialised `Dx` ([`LocalDataset`]), build the entire subtree `∆x` with
//! no further communication (paper §III). It uses exactly the same split
//! kernels ([`ts_splits::exact`]) and the same cross-column comparison as
//! the distributed column-task path, so the engine's trees are bit-identical
//! to single-machine training — the exactness guarantee the paper
//! distinguishes TreeServer from PLANET/MLlib by.

use crate::dataset::LocalDataset;
use crate::model::{DecisionTreeModel, Node, Prediction, SplitInfo};
use ts_datatable::{AttrType, Task};
use ts_splits::condition::partition_rows_buf;
use ts_splits::exact::ColumnSplit;
use ts_splits::impurity::{Impurity, LabelView, NodeStats};
use ts_splits::random::random_split_for_column;
use ts_splits::sorted::{best_split_at, distinct_categories_at, ColumnRef, NodeRows, RowBitmap};
use tsrand::rngs::StdRng;
use tsrand::seq::SliceRandom;
use tsrand::SeedableRng;

/// Below this node size the candidate-column loop stays sequential even when
/// `TrainParams::threads > 1` — thread hand-off costs more than the scan.
const PAR_COLS_MIN_ROWS: usize = 2_048;

/// How splits are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// Greedy exact splits over all candidate columns (decision trees,
    /// random forests — the column subset is baked into the dataset).
    Exact,
    /// Completely-random trees (Appendix F): one column resampled per node,
    /// a random threshold/category — structure driven by the seed.
    ExtraTrees,
}

/// Training hyperparameters shared by the local trainer and the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainParams {
    /// Impurity function (Gini/entropy for classification, variance for
    /// regression).
    pub impurity: Impurity,
    /// Maximum node depth; nodes at `depth >= dmax` become leaves. Use
    /// `u32::MAX` for unbounded (the paper's CF stage uses `dmax = ∞`).
    pub dmax: u32,
    /// A node with `|Dx| <= tau_leaf` becomes a leaf.
    pub tau_leaf: u64,
    /// Split-selection mode.
    pub mode: TrainMode,
    /// Threads for the candidate-column loop of large exact nodes (`tspar`);
    /// 1 keeps training single-threaded (the default — subtree-tasks already
    /// run on dedicated comper threads), 0 means "use the machine". The
    /// reduction is in column order either way, so the trained tree is
    /// identical at any thread count.
    pub threads: usize,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            impurity: Impurity::Gini,
            dmax: 10,
            tau_leaf: 1,
            mode: TrainMode::Exact,
            threads: 1,
        }
    }
}

impl TrainParams {
    /// Default parameters for a task, matching the paper's experiment setup
    /// (`dmax = 10`, `tau_leaf = 1`, Gini for classification, variance for
    /// regression).
    pub fn for_task(task: Task) -> TrainParams {
        TrainParams {
            impurity: if task.is_classification() {
                Impurity::Gini
            } else {
                Impurity::Variance
            },
            ..Default::default()
        }
    }
}

/// Converts node label statistics into the node's stored prediction.
pub fn prediction_from_stats(stats: &NodeStats) -> Prediction {
    match stats {
        NodeStats::Class(c) => {
            let (label, pmf) = c.prediction();
            Prediction::Class { label, pmf }
        }
        NodeStats::Reg(a) => Prediction::Real(a.mean()),
    }
}

/// Trains a whole tree over `table`, restricted to the `candidates` columns
/// (the per-tree sampled `C`; pass `0..m` for a plain decision tree).
pub fn train_tree(
    table: &ts_datatable::DataTable,
    candidates: &[usize],
    params: &TrainParams,
    seed: u64,
) -> DecisionTreeModel {
    let data = LocalDataset::from_table(table, candidates);
    train_subtree(&data, params, 0, seed)
}

/// Trains the subtree over a materialised dataset whose root sits at
/// absolute depth `base_depth` in the enclosing tree. Node depths in the
/// returned model are relative to the subtree root ([`DecisionTreeModel::graft`]
/// re-bases them).
pub fn train_subtree(
    data: &LocalDataset,
    params: &TrainParams,
    base_depth: u32,
    seed: u64,
) -> DecisionTreeModel {
    assert!(data.n_rows() > 0, "cannot train on an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = data.task.n_classes().unwrap_or(0);
    let mut builder = Builder {
        data,
        params,
        base_depth,
        nodes: Vec::new(),
        rng: &mut rng,
        view: LabelView::of(&data.labels, n_classes),
        mask: RowBitmap::with_rows(data.n_rows()),
    };
    let all: Vec<u32> = (0..data.n_rows() as u32).collect();
    builder.build(all, 0);
    DecisionTreeModel::new(builder.nodes, data.task)
}

struct Builder<'a> {
    data: &'a LocalDataset,
    params: &'a TrainParams,
    base_depth: u32,
    nodes: Vec<Node>,
    rng: &'a mut StdRng,
    /// Full-dataset label view; per-node stats are accumulated through it by
    /// position, which avoids the per-node label gather of the legacy path.
    view: LabelView<'a>,
    /// Reusable node-membership mask for the sorted scans — set to the
    /// node's rows for the span of its column loop, then cleared.
    mask: RowBitmap,
}

impl Builder<'_> {
    /// Builds the node over `positions` (row positions within the dataset)
    /// at relative depth `depth`; returns its arena index.
    fn build(&mut self, positions: Vec<u32>, depth: u32) -> usize {
        let n = positions.len() as u64;
        let stats =
            NodeStats::from_view_positions(self.view, positions.iter().map(|&p| p as usize));
        let prediction = prediction_from_stats(&stats);

        let abs_depth = self.base_depth.saturating_add(depth);
        let must_leaf =
            abs_depth >= self.params.dmax || n <= self.params.tau_leaf || stats.is_pure();

        let chosen = if must_leaf {
            None
        } else {
            self.choose_split(&positions)
        };

        let id = self.nodes.len();
        let Some((col_idx, split)) = chosen else {
            self.nodes.push(Node::leaf(prediction, n, depth));
            return id;
        };

        let seen = match self.data.types[col_idx] {
            AttrType::Categorical { n_values } => {
                Some(if positions.len() == self.data.n_rows() {
                    // Root-sized node: the distinct set cached at dataset
                    // construction is exactly "seen in Dx".
                    self.data.sorted[col_idx].distinct().to_vec()
                } else {
                    let codes = self.data.columns[col_idx]
                        .as_categorical()
                        .expect("categorical attribute stores categorical codes");
                    distinct_categories_at(codes, NodeRows::Subset(&positions), n_values)
                })
            }
            AttrType::Numeric => None,
        };
        let (left_positions, right_positions) = partition_rows_buf(
            &self.data.columns[col_idx],
            &positions,
            &split.test,
            split.missing_left,
        );
        debug_assert_eq!(left_positions.len() as u64, split.n_left());
        debug_assert_eq!(right_positions.len() as u64, split.n_right());
        drop(positions);

        // Reserve the parent slot, then grow children (pre-order arena).
        self.nodes.push(Node::leaf(prediction, n, depth));
        let info = SplitInfo {
            attr: self.data.attrs[col_idx],
            test: split.test,
            gain: split.gain,
            missing_left: split.missing_left,
            seen,
        };
        let l = self.build(left_positions, depth + 1);
        let r = self.build(right_positions, depth + 1);
        self.nodes[id].split = Some((info, l, r));
        id
    }

    /// Picks the split for a node; returns `(local column index, split)` or
    /// `None` when no column can split.
    fn choose_split(&mut self, positions: &[u32]) -> Option<(usize, ColumnSplit)> {
        match self.params.mode {
            TrainMode::Exact => {
                let data = self.data;
                let view = self.view;
                let imp = self.params.impurity;
                let whole = positions.len() == data.n_rows();
                let node = if whole {
                    NodeRows::All(data.n_rows())
                } else {
                    self.mask.insert_all(positions);
                    NodeRows::Subset(positions)
                };
                let mask = if whole { None } else { Some(&self.mask) };

                let eval = |i: usize| {
                    let col = ColumnRef::of_buf(&data.columns[i], &data.sorted[i], data.types[i]);
                    best_split_at(col, node, mask, view, imp)
                };
                let threads = self.params.threads;
                let results: Vec<Option<ColumnSplit>> =
                    if threads != 1 && data.n_cols() > 1 && positions.len() >= PAR_COLS_MIN_ROWS {
                        tspar::par_map_range(data.n_cols(), threads, eval)
                    } else {
                        (0..data.n_cols()).map(eval).collect()
                    };
                if !whole {
                    self.mask.remove_all(positions);
                }

                // Fold in column order — the same strict total order as the
                // sequential loop, regardless of which thread found what.
                let mut best: Option<(usize, ColumnSplit)> = None;
                for (i, s) in results.into_iter().enumerate() {
                    let Some(s) = s else { continue };
                    let wins = match &best {
                        None => true,
                        Some((bi, bs)) => ColumnSplit::challenger_wins(
                            &s,
                            self.data.attrs[i],
                            bs,
                            self.data.attrs[*bi],
                        ),
                    };
                    if wins {
                        best = Some((i, s));
                    }
                }
                best
            }
            TrainMode::ExtraTrees => {
                // Resample columns in random order until one can split; a
                // column with a constant value in Dx cannot. Random splits
                // work on gathered buffers (their thresholds come from the
                // rng, not from a sorted order).
                let labels_sub = self.data.labels.gather(positions);
                let n_classes = self.data.task.n_classes().unwrap_or(0);
                let view = LabelView::of(&labels_sub, n_classes);
                let mut order: Vec<usize> = (0..self.data.n_cols()).collect();
                order.shuffle(self.rng);
                for i in order {
                    let sub = self.data.columns[i].gather_positions(positions);
                    if let Some(s) = random_split_for_column(&sub, view, self.rng) {
                        return Some((i, s));
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::metrics::accuracy;
    use ts_datatable::synth::{generate, SynthSpec};
    use ts_datatable::Task;

    fn learnable_table(rows: usize, seed: u64) -> ts_datatable::DataTable {
        generate(&SynthSpec {
            rows,
            numeric: 5,
            categorical: 2,
            cat_cardinality: 6,
            noise: 0.02,
            concept_depth: 4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn exact_tree_fits_training_data_well() {
        let t = learnable_table(2_000, 3);
        let params = TrainParams {
            dmax: 12,
            ..TrainParams::for_task(t.schema().task)
        };
        let model = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);
        let acc = accuracy(&model.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn exact_tree_generalises_above_majority_baseline() {
        let t = learnable_table(4_000, 5);
        let (tr, te) = t.train_test_split(0.75, 1);
        let params = TrainParams::for_task(t.schema().task);
        let model = train_tree(&tr, &(0..tr.n_attrs()).collect::<Vec<_>>(), &params, 0);
        let acc = accuracy(&model.predict_labels(&te), te.labels().as_class().unwrap());
        // Majority baseline for a 2-class planted concept sits near 0.5-0.7.
        assert!(acc > 0.75, "test accuracy {acc}");
    }

    #[test]
    fn dmax_zero_yields_single_leaf() {
        let t = learnable_table(100, 1);
        let params = TrainParams {
            dmax: 0,
            ..Default::default()
        };
        let model = train_tree(&t, &[0, 1], &params, 0);
        assert_eq!(model.n_nodes(), 1);
        assert!(model.nodes[0].is_leaf());
    }

    #[test]
    fn dmax_bounds_depth() {
        let t = learnable_table(2_000, 2);
        for dmax in [1, 3, 6] {
            let params = TrainParams {
                dmax,
                ..Default::default()
            };
            let model = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);
            assert!(
                model.max_depth() <= dmax,
                "depth {} > dmax {dmax}",
                model.max_depth()
            );
        }
    }

    #[test]
    fn tau_leaf_prunes_small_nodes() {
        let t = learnable_table(1_000, 2);
        let params = TrainParams {
            tau_leaf: 100,
            dmax: 20,
            ..Default::default()
        };
        let model = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);
        for n in &model.nodes {
            if !n.is_leaf() {
                assert!(n.n_rows > 100, "internal node with {} rows", n.n_rows);
            }
        }
    }

    #[test]
    fn parallel_column_loop_matches_sequential() {
        let t = learnable_table(4_000, 11);
        let c: Vec<usize> = (0..t.n_attrs()).collect();
        let base = TrainParams::for_task(t.schema().task);
        let seq = train_tree(&t, &c, &base, 0);
        for threads in [0, 2, 4] {
            let par = train_tree(&t, &c, &TrainParams { threads, ..base }, 0);
            assert_eq!(seq, par, "threads={threads} must not change the tree");
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let t = learnable_table(1_500, 9);
        let params = TrainParams::for_task(t.schema().task);
        let c: Vec<usize> = (0..t.n_attrs()).collect();
        let a = train_tree(&t, &c, &params, 0);
        let b = train_tree(&t, &c, &params, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let t = learnable_table(1_000, 4);
        let model = train_tree(&t, &[2, 4], &TrainParams::default(), 0);
        for n in &model.nodes {
            if let Some((info, _, _)) = &n.split {
                assert!([2, 4].contains(&info.attr));
            }
        }
    }

    #[test]
    fn subtree_base_depth_respects_dmax() {
        let t = learnable_table(1_000, 6);
        let data = LocalDataset::from_table(&t, &[0, 1, 2]);
        let params = TrainParams {
            dmax: 5,
            ..Default::default()
        };
        let model = train_subtree(&data, &params, 3, 0);
        // Absolute depth cap 5 minus base 3 leaves at most 2 relative levels.
        assert!(model.max_depth() <= 2);
    }

    #[test]
    fn node_counters_partition_parent() {
        let t = learnable_table(2_000, 8);
        let model = train_tree(
            &t,
            &(0..t.n_attrs()).collect::<Vec<_>>(),
            &TrainParams::default(),
            0,
        );
        for n in &model.nodes {
            if let Some((_, l, r)) = &n.split {
                assert_eq!(
                    model.nodes[*l].n_rows + model.nodes[*r].n_rows,
                    n.n_rows,
                    "children must partition the parent rows"
                );
            }
        }
    }

    #[test]
    fn regression_tree_reduces_rmse() {
        let t = generate(&SynthSpec {
            rows: 3_000,
            numeric: 6,
            categorical: 1,
            task: Task::Regression,
            noise: 0.05,
            concept_depth: 4,
            seed: 12,
            ..Default::default()
        });
        let (tr, te) = t.train_test_split(0.8, 2);
        let params = TrainParams::for_task(Task::Regression);
        let model = train_tree(&tr, &(0..tr.n_attrs()).collect::<Vec<_>>(), &params, 0);
        let pred = model.predict_values(&te);
        let truth = te.labels().as_real().unwrap();
        let rmse = ts_datatable::metrics::rmse(&pred, truth);
        // Mean-only baseline.
        let mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let base: Vec<f64> = vec![mean; truth.len()];
        let base_rmse = ts_datatable::metrics::rmse(&base, truth);
        assert!(
            rmse < base_rmse * 0.7,
            "rmse {rmse} vs baseline {base_rmse}"
        );
    }

    #[test]
    fn extra_trees_build_and_vary_with_seed() {
        let t = learnable_table(1_000, 7);
        let params = TrainParams {
            mode: TrainMode::ExtraTrees,
            ..Default::default()
        };
        let c: Vec<usize> = (0..t.n_attrs()).collect();
        let a = train_tree(&t, &c, &params, 1);
        let b = train_tree(&t, &c, &params, 2);
        let a2 = train_tree(&t, &c, &params, 1);
        assert_eq!(a, a2, "same seed, same tree");
        assert_ne!(a, b, "different seeds should differ");
        assert!(a.n_nodes() > 3);
    }

    #[test]
    fn missing_values_train_without_panic() {
        let t = generate(&SynthSpec {
            rows: 1_000,
            numeric: 4,
            categorical: 2,
            missing_rate: 0.15,
            seed: 3,
            ..Default::default()
        });
        let model = train_tree(
            &t,
            &(0..t.n_attrs()).collect::<Vec<_>>(),
            &TrainParams::default(),
            0,
        );
        assert!(model.n_nodes() >= 1);
        // Prediction over the same (missing-laden) table must not panic.
        let _ = model.predict_labels(&t);
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        use ts_datatable::{AttrMeta, Column, Labels, Schema};
        let t = ts_datatable::DataTable::new(
            Schema::new(
                vec![AttrMeta::numeric("a")],
                Task::Classification { n_classes: 2 },
            ),
            vec![Column::Numeric(vec![1.0, 2.0, 3.0])],
            Labels::Class(vec![1, 1, 1]),
        );
        let model = train_tree(&t, &[0], &TrainParams::default(), 0);
        assert_eq!(model.n_nodes(), 1);
        assert_eq!(model.nodes[0].prediction.label(), 1);
    }
}
