//! `LocalDataset`: the materialised `Dx` a subtree-task trains on.
//!
//! When `|Dx| <= τ_D`, the key worker pulls the candidate columns restricted
//! to `Ix` from the machines holding them plus the `Y`-values it already has
//! locally, and assembles this structure (paper §III/IV). The same structure
//! backs whole-table single-machine training (the fairness experiment).

use ts_datatable::{AttrType, DataTable, Labels, SortedColumn, Task, ValuesBuf};

/// A gathered, self-contained slice of the training data: a set of columns
/// (by global attribute id) over one common row set, plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDataset {
    /// Global attribute id of each local column.
    pub attrs: Vec<usize>,
    /// Attribute type of each local column.
    pub types: Vec<AttrType>,
    /// Gathered values of each local column, all aligned on the same rows.
    pub columns: Vec<ValuesBuf>,
    /// Presorted index of each local column, built once at construction and
    /// shared by every node of the subtree (see `ts_splits::sorted`).
    pub sorted: Vec<SortedColumn>,
    /// Gathered labels, aligned with the columns.
    pub labels: Labels,
    /// The prediction task.
    pub task: Task,
}

impl LocalDataset {
    /// Builds a dataset, validating alignment.
    ///
    /// # Panics
    /// Panics if the parallel vectors disagree in length or any column is
    /// not aligned with the labels.
    pub fn new(
        attrs: Vec<usize>,
        types: Vec<AttrType>,
        columns: Vec<ValuesBuf>,
        labels: Labels,
        task: Task,
    ) -> Self {
        assert_eq!(attrs.len(), types.len(), "attrs/types length mismatch");
        assert_eq!(attrs.len(), columns.len(), "attrs/columns length mismatch");
        let n = labels.len();
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), n, "column {i} not aligned with labels");
        }
        let sorted = columns.iter().map(SortedColumn::build_buf).collect();
        LocalDataset {
            attrs,
            types,
            columns,
            sorted,
            labels,
            task,
        }
    }

    /// Builds a dataset over a whole table restricted to `candidates`
    /// (global attribute ids). Used by single-machine training and tests.
    pub fn from_table(table: &DataTable, candidates: &[usize]) -> Self {
        let all_rows: Vec<u32> = (0..table.n_rows() as u32).collect();
        Self::from_table_rows(table, candidates, &all_rows)
    }

    /// Builds a dataset over a row subset of a table.
    pub fn from_table_rows(table: &DataTable, candidates: &[usize], rows: &[u32]) -> Self {
        let attrs = candidates.to_vec();
        let types = candidates
            .iter()
            .map(|&a| table.schema().attr_type(a))
            .collect();
        let columns = candidates.iter().map(|&a| table.gather(a, rows)).collect();
        let labels = table.labels().gather(rows);
        LocalDataset::new(attrs, types, columns, labels, table.schema().task)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of local columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Total payload bytes (for the engine's task-memory accounting).
    pub fn payload_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(ValuesBuf::payload_bytes)
            .sum::<usize>()
            + self.labels.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::{generate, SynthSpec};

    #[test]
    fn from_table_gathers_all_rows() {
        let t = generate(&SynthSpec {
            rows: 50,
            numeric: 3,
            categorical: 1,
            ..Default::default()
        });
        let d = LocalDataset::from_table(&t, &[0, 2, 3]);
        assert_eq!(d.n_rows(), 50);
        assert_eq!(d.n_cols(), 3);
        assert_eq!(d.attrs, vec![0, 2, 3]);
        assert_eq!(d.columns[0], t.gather(0, &(0..50).collect::<Vec<_>>()));
    }

    #[test]
    fn from_table_rows_subset() {
        let t = generate(&SynthSpec {
            rows: 20,
            numeric: 2,
            ..Default::default()
        });
        let d = LocalDataset::from_table_rows(&t, &[1], &[3, 7, 11]);
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.columns[0], t.gather(1, &[3, 7, 11]));
        assert_eq!(d.labels, t.labels().gather(&[3, 7, 11]));
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_column_panics() {
        LocalDataset::new(
            vec![0],
            vec![AttrType::Numeric],
            vec![ValuesBuf::Numeric(vec![1.0, 2.0])],
            Labels::Real(vec![1.0]),
            Task::Regression,
        );
    }

    #[test]
    fn payload_bytes_counts_columns_and_labels() {
        let d = LocalDataset::new(
            vec![0],
            vec![AttrType::Numeric],
            vec![ValuesBuf::Numeric(vec![1.0, 2.0])],
            Labels::Real(vec![1.0, 2.0]),
            Task::Regression,
        );
        assert_eq!(d.payload_bytes(), 16 + 16);
    }
}
