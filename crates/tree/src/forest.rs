//! Bagged forests: prediction by PMF averaging.
//!
//! In the paper's deep forest, "a forest for k-class classification returns
//! a k-dimensional vector computed as the average of the class PMF vectors
//! returned by all its trees" (§VII). `ForestModel` implements exactly that,
//! plus plain label/value prediction for the evaluation tables.

use crate::compiled::{CompiledTree, TableView};
use crate::model::{DecisionTreeModel, Prediction};
use ts_datatable::{DataTable, Task};
use tsjson::{Deserialize, Serialize};

/// A bag of independently-trained trees over one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestModel {
    /// The member trees.
    pub trees: Vec<DecisionTreeModel>,
    /// The prediction task.
    pub task: Task,
}

impl ForestModel {
    /// Builds a forest, validating that every tree matches the task.
    ///
    /// A zero-tree forest is allowed (it can also arise from
    /// deserialisation): its predictions are the task's uninformed prior —
    /// a uniform PMF / label 0 for classification, 0.0 for regression.
    ///
    /// # Panics
    /// Panics if a member has a different task.
    pub fn new(trees: Vec<DecisionTreeModel>, task: Task) -> Self {
        for t in &trees {
            assert_eq!(t.task, task, "tree task mismatch");
        }
        ForestModel { trees, task }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// PMF width for classification forests.
    fn n_classes(&self) -> usize {
        self.task
            .n_classes()
            .expect("PMF prediction requires a classification forest") as usize
    }

    /// The averaged PMF vector for one row (classification forests). This
    /// is the per-row reference path; the whole-table methods below run the
    /// compiled engine and are bit-identical to it.
    pub fn predict_pmf_row(&self, table: &DataTable, row: usize) -> Vec<f32> {
        let k = self.n_classes();
        if self.trees.is_empty() {
            return uniform_pmf(k);
        }
        let mut acc = vec![0f32; k];
        for t in &self.trees {
            let p = t.predict_row(table, row, u32::MAX);
            match p {
                Prediction::Class { pmf, .. } => {
                    for (a, b) in acc.iter_mut().zip(pmf) {
                        *a += b;
                    }
                }
                Prediction::Real(_) => unreachable!("task checked at construction"),
            }
        }
        let inv = 1.0 / self.trees.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Averaged PMFs for every row — deep forest's re-representation
    /// output — on the compiled batched path.
    pub fn predict_pmf(&self, table: &DataTable) -> Vec<Vec<f32>> {
        let k = self.n_classes();
        let flat = self.predict_pmf_flat(table);
        flat.chunks(k.max(1)).map(<[f32]>::to_vec).collect()
    }

    /// Averaged PMFs for every row, row-major in one flat buffer
    /// (`n_rows * n_classes`); the allocation-friendly form `ts-serve` and
    /// the deep-forest feature extraction build on.
    pub fn predict_pmf_flat(&self, table: &DataTable) -> Vec<f32> {
        let k = self.n_classes();
        let n = table.n_rows();
        if self.trees.is_empty() {
            let u = uniform_pmf(k);
            return (0..n).flat_map(|_| u.iter().copied()).collect();
        }
        let view = TableView::of(table);
        let mut acc = vec![0f32; n * k];
        for t in &self.trees {
            CompiledTree::compile(t).accumulate_pmf_table(&view, &mut acc);
        }
        let inv = 1.0 / self.trees.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Majority-vote labels from the averaged PMFs (ties toward the smaller
    /// class id), on the compiled batched path.
    pub fn predict_labels(&self, table: &DataTable) -> Vec<u32> {
        let k = self.n_classes();
        self.predict_pmf_flat(table)
            .chunks(k.max(1))
            .map(argmax)
            .collect()
    }

    /// Mean of per-tree regression predictions for every row, on the
    /// compiled batched path.
    pub fn predict_values(&self, table: &DataTable) -> Vec<f64> {
        let n = table.n_rows();
        if self.trees.is_empty() {
            return vec![0.0; n];
        }
        let view = TableView::of(table);
        let mut acc = vec![0f64; n];
        for t in &self.trees {
            CompiledTree::compile(t).accumulate_values_table(&view, &mut acc);
        }
        let inv_n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= inv_n;
        }
        acc
    }

    /// Reference traversal for [`predict_pmf`](Self::predict_pmf): one
    /// [`predict_pmf_row`](Self::predict_pmf_row) per row.
    pub fn predict_pmf_reference(&self, table: &DataTable) -> Vec<Vec<f32>> {
        (0..table.n_rows())
            .map(|r| self.predict_pmf_row(table, r))
            .collect()
    }

    /// Reference traversal for [`predict_labels`](Self::predict_labels).
    pub fn predict_labels_reference(&self, table: &DataTable) -> Vec<u32> {
        (0..table.n_rows())
            .map(|r| {
                let pmf = self.predict_pmf_row(table, r);
                argmax(&pmf)
            })
            .collect()
    }

    /// Reference traversal for [`predict_values`](Self::predict_values).
    pub fn predict_values_reference(&self, table: &DataTable) -> Vec<f64> {
        if self.trees.is_empty() {
            return vec![0.0; table.n_rows()];
        }
        (0..table.n_rows())
            .map(|r| {
                self.trees
                    .iter()
                    .map(|t| t.predict_row(table, r, u32::MAX).value())
                    .sum::<f64>()
                    / self.trees.len() as f64
            })
            .collect()
    }

    /// Mean gain-based feature importance across the member trees (each
    /// tree's importances are normalised first, so every tree votes with
    /// equal weight).
    pub fn feature_importance(&self, n_attrs: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_attrs];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(t.feature_importance(n_attrs)) {
                *a += v;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        tsjson::to_string(self).expect("forest serialisation cannot fail")
    }

    /// Deserialises from JSON.
    pub fn from_json(s: &str) -> Result<Self, tsjson::Error> {
        tsjson::from_str(s)
    }
}

/// The uninformed prior a zero-tree classification forest predicts with.
fn uniform_pmf(k: usize) -> Vec<f32> {
    if k == 0 {
        return Vec::new();
    }
    vec![1.0 / k as f32; k]
}

/// Index of the maximum entry, ties toward the smaller index.
pub fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_tree, TrainParams};
    use ts_datatable::metrics::accuracy;
    use ts_datatable::synth::{generate, SynthSpec};

    fn forest_on(rows: usize, n_trees: usize, seed: u64) -> (ForestModel, ts_datatable::DataTable) {
        let t = generate(&SynthSpec {
            rows,
            numeric: 6,
            categorical: 0,
            noise: 0.03,
            concept_depth: 4,
            seed,
            ..Default::default()
        });
        let params = TrainParams::for_task(t.schema().task);
        // Vary the candidate subsets like a random forest (|C| = sqrt(m)).
        let trees: Vec<_> = (0..n_trees)
            .map(|i| {
                let c = vec![i % 6, (i + 2) % 6];
                train_tree(&t, &c, &params, i as u64)
            })
            .collect();
        (ForestModel::new(trees, t.schema().task), t)
    }

    #[test]
    fn pmf_is_normalised_average() {
        let (f, t) = forest_on(800, 5, 3);
        let pmf = f.predict_pmf_row(&t, 0);
        assert_eq!(pmf.len(), 2);
        let sum: f32 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "pmf sums to {sum}");
    }

    #[test]
    fn forest_beats_or_matches_nothing_degenerate() {
        let (f, t) = forest_on(2_000, 9, 5);
        let acc = accuracy(&f.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(acc > 0.7, "forest training accuracy {acc}");
    }

    #[test]
    fn argmax_ties_toward_smaller_index() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn regression_forest_averages_trees() {
        let t = generate(&SynthSpec {
            rows: 1_000,
            numeric: 4,
            task: ts_datatable::Task::Regression,
            seed: 8,
            ..Default::default()
        });
        let params = TrainParams::for_task(ts_datatable::Task::Regression);
        let trees: Vec<_> = (0..3)
            .map(|i| train_tree(&t, &[i, (i + 1) % 4], &params, i as u64))
            .collect();
        let single_preds: Vec<Vec<f64>> = trees.iter().map(|tr| tr.predict_values(&t)).collect();
        let f = ForestModel::new(trees, ts_datatable::Task::Regression);
        let avg = f.predict_values(&t);
        for r in [0usize, 13, 999] {
            let manual = (single_preds[0][r] + single_preds[1][r] + single_preds[2][r]) / 3.0;
            assert!((avg[r] - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn json_roundtrip() {
        let (f, _) = forest_on(300, 2, 1);
        let j = f.to_json();
        let back = ForestModel::from_json(&j).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn zero_tree_forest_is_well_defined() {
        let t = generate(&SynthSpec {
            rows: 7,
            numeric: 2,
            seed: 11,
            ..Default::default()
        });
        let f = ForestModel::new(vec![], t.schema().task);
        assert_eq!(f.n_trees(), 0);
        assert_eq!(f.predict_labels(&t), vec![0; 7]);
        assert_eq!(f.predict_labels_reference(&t), vec![0; 7]);
        for pmf in f.predict_pmf(&t) {
            assert_eq!(pmf, vec![0.5, 0.5]);
        }
        let reg = ForestModel::new(vec![], ts_datatable::Task::Regression);
        assert_eq!(reg.predict_values(&t), vec![0.0; 7]);
        assert_eq!(reg.predict_values_reference(&t), vec![0.0; 7]);
    }

    #[test]
    fn compiled_forest_paths_match_reference_bitwise() {
        let (f, t) = forest_on(600, 7, 21);
        assert_eq!(f.predict_labels(&t), f.predict_labels_reference(&t));
        let fast = f.predict_pmf(&t);
        let slow = f.predict_pmf_reference(&t);
        for (a, b) in fast.iter().zip(&slow) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
