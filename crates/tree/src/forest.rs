//! Bagged forests: prediction by PMF averaging.
//!
//! In the paper's deep forest, "a forest for k-class classification returns
//! a k-dimensional vector computed as the average of the class PMF vectors
//! returned by all its trees" (§VII). `ForestModel` implements exactly that,
//! plus plain label/value prediction for the evaluation tables.

use crate::model::{DecisionTreeModel, Prediction};
use ts_datatable::{DataTable, Task};
use tsjson::{Deserialize, Serialize};

/// A bag of independently-trained trees over one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestModel {
    /// The member trees.
    pub trees: Vec<DecisionTreeModel>,
    /// The prediction task.
    pub task: Task,
}

impl ForestModel {
    /// Builds a forest, validating that every tree matches the task.
    ///
    /// # Panics
    /// Panics if the forest is empty or a member has a different task.
    pub fn new(trees: Vec<DecisionTreeModel>, task: Task) -> Self {
        assert!(!trees.is_empty(), "forest must contain at least one tree");
        for t in &trees {
            assert_eq!(t.task, task, "tree task mismatch");
        }
        ForestModel { trees, task }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The averaged PMF vector for one row (classification forests).
    pub fn predict_pmf_row(&self, table: &DataTable, row: usize) -> Vec<f32> {
        let k = self
            .task
            .n_classes()
            .expect("predict_pmf_row requires a classification forest") as usize;
        let mut acc = vec![0f32; k];
        for t in &self.trees {
            let p = t.predict_row(table, row, u32::MAX);
            match p {
                Prediction::Class { pmf, .. } => {
                    for (a, b) in acc.iter_mut().zip(pmf) {
                        *a += b;
                    }
                }
                Prediction::Real(_) => unreachable!("task checked at construction"),
            }
        }
        let inv = 1.0 / self.trees.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Averaged PMFs for every row — deep forest's re-representation output.
    pub fn predict_pmf(&self, table: &DataTable) -> Vec<Vec<f32>> {
        (0..table.n_rows())
            .map(|r| self.predict_pmf_row(table, r))
            .collect()
    }

    /// Majority-vote labels from the averaged PMFs (ties toward the smaller
    /// class id).
    pub fn predict_labels(&self, table: &DataTable) -> Vec<u32> {
        (0..table.n_rows())
            .map(|r| {
                let pmf = self.predict_pmf_row(table, r);
                argmax(&pmf)
            })
            .collect()
    }

    /// Mean of per-tree regression predictions for every row.
    pub fn predict_values(&self, table: &DataTable) -> Vec<f64> {
        (0..table.n_rows())
            .map(|r| {
                self.trees
                    .iter()
                    .map(|t| t.predict_row(table, r, u32::MAX).value())
                    .sum::<f64>()
                    / self.trees.len() as f64
            })
            .collect()
    }

    /// Mean gain-based feature importance across the member trees (each
    /// tree's importances are normalised first, so every tree votes with
    /// equal weight).
    pub fn feature_importance(&self, n_attrs: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_attrs];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(t.feature_importance(n_attrs)) {
                *a += v;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        tsjson::to_string(self).expect("forest serialisation cannot fail")
    }

    /// Deserialises from JSON.
    pub fn from_json(s: &str) -> Result<Self, tsjson::Error> {
        tsjson::from_str(s)
    }
}

/// Index of the maximum entry, ties toward the smaller index.
pub fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_tree, TrainParams};
    use ts_datatable::metrics::accuracy;
    use ts_datatable::synth::{generate, SynthSpec};

    fn forest_on(rows: usize, n_trees: usize, seed: u64) -> (ForestModel, ts_datatable::DataTable) {
        let t = generate(&SynthSpec {
            rows,
            numeric: 6,
            categorical: 0,
            noise: 0.03,
            concept_depth: 4,
            seed,
            ..Default::default()
        });
        let params = TrainParams::for_task(t.schema().task);
        // Vary the candidate subsets like a random forest (|C| = sqrt(m)).
        let trees: Vec<_> = (0..n_trees)
            .map(|i| {
                let c = vec![i % 6, (i + 2) % 6];
                train_tree(&t, &c, &params, i as u64)
            })
            .collect();
        (ForestModel::new(trees, t.schema().task), t)
    }

    #[test]
    fn pmf_is_normalised_average() {
        let (f, t) = forest_on(800, 5, 3);
        let pmf = f.predict_pmf_row(&t, 0);
        assert_eq!(pmf.len(), 2);
        let sum: f32 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "pmf sums to {sum}");
    }

    #[test]
    fn forest_beats_or_matches_nothing_degenerate() {
        let (f, t) = forest_on(2_000, 9, 5);
        let acc = accuracy(&f.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(acc > 0.7, "forest training accuracy {acc}");
    }

    #[test]
    fn argmax_ties_toward_smaller_index() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn regression_forest_averages_trees() {
        let t = generate(&SynthSpec {
            rows: 1_000,
            numeric: 4,
            task: ts_datatable::Task::Regression,
            seed: 8,
            ..Default::default()
        });
        let params = TrainParams::for_task(ts_datatable::Task::Regression);
        let trees: Vec<_> = (0..3)
            .map(|i| train_tree(&t, &[i, (i + 1) % 4], &params, i as u64))
            .collect();
        let single_preds: Vec<Vec<f64>> = trees.iter().map(|tr| tr.predict_values(&t)).collect();
        let f = ForestModel::new(trees, ts_datatable::Task::Regression);
        let avg = f.predict_values(&t);
        for r in [0usize, 13, 999] {
            let manual = (single_preds[0][r] + single_preds[1][r] + single_preds[2][r]) / 3.0;
            assert!((avg[r] - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn json_roundtrip() {
        let (f, _) = forest_on(300, 2, 1);
        let j = f.to_json();
        let back = ForestModel::from_json(&j).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn empty_forest_panics() {
        ForestModel::new(vec![], ts_datatable::Task::Regression);
    }
}
