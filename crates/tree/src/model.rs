//! The decision-tree model: arena nodes, prediction, and subtree grafting.

use ts_datatable::{DataTable, Task, Value};
use ts_splits::SplitTest;
use tsjson::{Deserialize, Serialize};

/// The split stored at an internal node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitInfo {
    /// Global attribute id of the split-attribute.
    pub attr: usize,
    /// The split test (`Ai <= v` or `Ai ∈ Sl`).
    pub test: SplitTest,
    /// Weighted impurity decrease of the split (identical from the engine
    /// and the local trainer — same kernels). Feeds feature importance.
    pub gain: f64,
    /// Where rows with a missing value were routed during training.
    pub missing_left: bool,
    /// For categorical split-attributes: the category codes seen in `Dx`
    /// during training (sorted). A test value outside this set is "unseen"
    /// and prediction stops at this node (Appendix D). `None` for numeric.
    pub seen: Option<Vec<u32>>,
}

/// The prediction a node carries.
///
/// TreeServer materialises predictions at **internal** nodes too (Appendix
/// D): they are a byproduct of training (every node observes `Dx`), and they
/// let prediction stop early — at a depth cap, at a missing value, or at an
/// unseen categorical value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Prediction {
    /// Majority label and PMF over classes.
    Class {
        /// Majority label (ties toward the smaller id).
        label: u32,
        /// Probability mass function over all classes.
        pmf: Vec<f32>,
    },
    /// Mean target value.
    Real(f64),
}

impl Prediction {
    /// The class label; panics on regression predictions.
    pub fn label(&self) -> u32 {
        match self {
            Prediction::Class { label, .. } => *label,
            Prediction::Real(_) => panic!("label() on a regression prediction"),
        }
    }

    /// The regression value; panics on classification predictions.
    pub fn value(&self) -> f64 {
        match self {
            Prediction::Real(v) => *v,
            Prediction::Class { .. } => panic!("value() on a classification prediction"),
        }
    }

    /// The PMF; panics on regression predictions.
    pub fn pmf(&self) -> &[f32] {
        match self {
            Prediction::Class { pmf, .. } => pmf,
            Prediction::Real(_) => panic!("pmf() on a regression prediction"),
        }
    }
}

/// One node of the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// `Some((split, left_child, right_child))` for internal nodes.
    pub split: Option<(SplitInfo, usize, usize)>,
    /// This node's prediction over its training rows `Dx`.
    pub prediction: Prediction,
    /// `|Dx|` during training.
    pub n_rows: u64,
    /// Depth (root = 0).
    pub depth: u32,
}

impl Node {
    /// Creates a leaf node.
    pub fn leaf(prediction: Prediction, n_rows: u64, depth: u32) -> Node {
        Node {
            split: None,
            prediction,
            n_rows,
            depth,
        }
    }

    /// Whether the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.split.is_none()
    }
}

/// A trained decision tree. Node 0 is the root; children always have larger
/// indices than their parent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeModel {
    /// The node arena.
    pub nodes: Vec<Node>,
    /// The prediction task this tree was trained for.
    pub task: Task,
}

impl DecisionTreeModel {
    /// Creates a model from a node arena.
    ///
    /// # Panics
    /// Panics if the arena is empty or child indices are out of range /
    /// not strictly larger than their parents.
    pub fn new(nodes: Vec<Node>, task: Task) -> Self {
        assert!(!nodes.is_empty(), "tree must have a root");
        for (i, n) in nodes.iter().enumerate() {
            if let Some((_, l, r)) = &n.split {
                assert!(*l > i && *r > i, "children must follow their parent");
                assert!(
                    *l < nodes.len() && *r < nodes.len(),
                    "child index out of range"
                );
            }
        }
        DecisionTreeModel { nodes, task }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Gain-based feature importance: per attribute, the summed weighted
    /// impurity decrease of every split on it, normalised to sum to 1
    /// (all-zero for a single-leaf tree).
    pub fn feature_importance(&self, n_attrs: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_attrs];
        for n in &self.nodes {
            if let Some((info, _, _)) = &n.split {
                imp[info.attr] += info.gain.max(0.0);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Predicts one row, reading attribute values through `get`, descending
    /// at most `max_depth` levels (`u32::MAX` for no cap).
    ///
    /// Appendix D semantics: a missing value or an unseen categorical value
    /// at a split node stops the walk and reports that node's prediction.
    pub fn predict_with(&self, get: impl Fn(usize) -> Value, max_depth: u32) -> &Prediction {
        let mut i = 0usize;
        loop {
            let node = &self.nodes[i];
            let Some((split, l, r)) = &node.split else {
                return &node.prediction;
            };
            if node.depth >= max_depth {
                return &node.prediction;
            }
            let v = get(split.attr);
            if let (Value::Cat(c), Some(seen)) = (&v, &split.seen) {
                if seen.binary_search(c).is_err() {
                    // Unseen during training: stop here (Appendix D).
                    return &node.prediction;
                }
            }
            match split.test.goes_left(v) {
                None => return &node.prediction, // missing value
                Some(true) => i = *l,
                Some(false) => i = *r,
            }
        }
    }

    /// Predicts one table row.
    pub fn predict_row(&self, table: &DataTable, row: usize, max_depth: u32) -> &Prediction {
        self.predict_with(|attr| table.value(row, attr), max_depth)
    }

    /// Predicts class labels for every row (classification trees) on the
    /// compiled batched path — bit-identical to
    /// [`predict_labels_reference`](Self::predict_labels_reference).
    pub fn predict_labels(&self, table: &DataTable) -> Vec<u32> {
        crate::compiled::CompiledTree::compile(self).predict_labels_table(table)
    }

    /// Predicts values for every row (regression trees) on the compiled
    /// batched path — bit-identical to
    /// [`predict_values_reference`](Self::predict_values_reference).
    pub fn predict_values(&self, table: &DataTable) -> Vec<f64> {
        crate::compiled::CompiledTree::compile(self).predict_values_table(table)
    }

    /// Reference traversal for [`predict_labels`](Self::predict_labels):
    /// one [`predict_row`](Self::predict_row) walk per row.
    pub fn predict_labels_reference(&self, table: &DataTable) -> Vec<u32> {
        (0..table.n_rows())
            .map(|r| self.predict_row(table, r, u32::MAX).label())
            .collect()
    }

    /// Reference traversal for [`predict_values`](Self::predict_values).
    pub fn predict_values_reference(&self, table: &DataTable) -> Vec<f64> {
        (0..table.n_rows())
            .map(|r| self.predict_row(table, r, u32::MAX).value())
            .collect()
    }

    /// Grafts `subtree` in place of the leaf at `at`, re-basing child indices
    /// and depths. This is how the master hooks a subtree-task's result onto
    /// the tree under construction (paper §III, Fig. 3(b)).
    ///
    /// # Panics
    /// Panics if `at` is not a leaf.
    pub fn graft(&mut self, at: usize, subtree: DecisionTreeModel) {
        graft_nodes(&mut self.nodes, at, subtree);
    }

    /// Rebuilds the arena in depth-first pre-order (left before right).
    ///
    /// Two trees with the same structure compare equal after
    /// canonicalisation even if their nodes were appended in different
    /// orders — the distributed engine completes subtrees asynchronously, so
    /// its arena layout differs from the recursive trainer's while the tree
    /// itself is identical.
    pub fn canonicalize(&self) -> DecisionTreeModel {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        self.canon_visit(0, &mut nodes);
        DecisionTreeModel::new(nodes, self.task)
    }

    fn canon_visit(&self, old: usize, out: &mut Vec<Node>) -> usize {
        let id = out.len();
        out.push(self.nodes[old].clone());
        if let Some((info, l, r)) = self.nodes[old].split.clone() {
            let nl = self.canon_visit(l, out);
            let nr = self.canon_visit(r, out);
            out[id].split = Some((info, nl, nr));
        }
        id
    }

    /// Renders the tree as indented ASCII, one node per line. `attr_name`
    /// maps attribute ids to display names (fall back to `a<i>`).
    pub fn render(&self, attr_name: impl Fn(usize) -> String) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &attr_name, &mut out);
        out
    }

    fn render_node(
        &self,
        i: usize,
        indent: usize,
        attr_name: &impl Fn(usize) -> String,
        out: &mut String,
    ) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(indent);
        let n = &self.nodes[i];
        match &n.split {
            None => {
                let pred = match &n.prediction {
                    Prediction::Class { label, pmf } => {
                        format!(
                            "class {label} (p={:.2})",
                            pmf.get(*label as usize).copied().unwrap_or(0.0)
                        )
                    }
                    Prediction::Real(v) => format!("{v:.4}"),
                };
                let _ = writeln!(out, "{pad}leaf: {pred}  [{} rows]", n.n_rows);
            }
            Some((info, l, r)) => {
                let test = match &info.test {
                    ts_splits::SplitTest::NumericLe(v) => {
                        format!("{} <= {v:.4}", attr_name(info.attr))
                    }
                    ts_splits::SplitTest::CatIn(set) => {
                        format!("{} in {set:?}", attr_name(info.attr))
                    }
                };
                let _ = writeln!(
                    out,
                    "{pad}{test}  [{} rows, gain {:.3}]",
                    n.n_rows, info.gain
                );
                self.render_node(*l, indent + 1, attr_name, out);
                self.render_node(*r, indent + 1, attr_name, out);
            }
        }
    }

    /// Serialises to JSON (the master "flushes trees to disk" as JSON files).
    pub fn to_json(&self) -> String {
        tsjson::to_string(self).expect("tree serialisation cannot fail")
    }

    /// Deserialises from JSON.
    pub fn from_json(s: &str) -> Result<Self, tsjson::Error> {
        tsjson::from_str(s)
    }
}

/// Grafts `subtree` onto a node arena under construction, replacing the leaf
/// at `at` (see [`DecisionTreeModel::graft`]). Exposed separately because the
/// master assembles trees as bare arenas before sealing them into models.
///
/// # Panics
/// Panics if `at` is not a leaf of `nodes`.
pub fn graft_nodes(nodes: &mut Vec<Node>, at: usize, subtree: DecisionTreeModel) {
    assert!(nodes[at].is_leaf(), "graft target must be a leaf");
    let base_depth = nodes[at].depth;
    let offset = nodes.len();
    // The subtree root replaces the leaf; its children move to the arena
    // tail with indices shifted by `offset - 1` (subtree index 1 becomes
    // arena index `offset`, etc.).
    let rebase = |child: usize| -> usize {
        debug_assert!(child >= 1);
        offset + child - 1
    };
    let mut it = subtree.nodes.into_iter();
    let mut root = it.next().expect("subtree must have a root");
    root.depth = base_depth;
    if let Some((_, l, r)) = &mut root.split {
        *l = rebase(*l);
        *r = rebase(*r);
    }
    nodes[at] = root;
    for mut n in it {
        n.depth += base_depth;
        if let Some((_, l, r)) = &mut n.split {
            *l = rebase(*l);
            *r = rebase(*r);
        }
        nodes.push(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::{AttrMeta, Column, Labels, Schema};

    fn two_level_tree() -> DecisionTreeModel {
        // root: A0 <= 40 ? leaf(no=0) : node(A1 in {2,3,4} ? yes : no)
        let nodes = vec![
            Node {
                split: Some((
                    SplitInfo {
                        attr: 0,
                        test: SplitTest::NumericLe(40.0),
                        gain: 1.0,
                        missing_left: true,
                        seen: None,
                    },
                    1,
                    2,
                )),
                prediction: Prediction::Class {
                    label: 0,
                    pmf: vec![0.7, 0.3],
                },
                n_rows: 10,
                depth: 0,
            },
            Node::leaf(
                Prediction::Class {
                    label: 1,
                    pmf: vec![0.2, 0.8],
                },
                5,
                1,
            ),
            Node {
                split: Some((
                    SplitInfo {
                        attr: 1,
                        test: SplitTest::cat_in(vec![2, 3, 4]),
                        gain: 0.5,
                        missing_left: false,
                        seen: Some(vec![1, 2, 3, 4]),
                    },
                    3,
                    4,
                )),
                prediction: Prediction::Class {
                    label: 0,
                    pmf: vec![0.9, 0.1],
                },
                n_rows: 5,
                depth: 1,
            },
            Node::leaf(
                Prediction::Class {
                    label: 0,
                    pmf: vec![1.0, 0.0],
                },
                3,
                2,
            ),
            Node::leaf(
                Prediction::Class {
                    label: 1,
                    pmf: vec![0.0, 1.0],
                },
                2,
                2,
            ),
        ];
        DecisionTreeModel::new(nodes, Task::Classification { n_classes: 2 })
    }

    #[test]
    fn predict_descends_both_sides() {
        let t = two_level_tree();
        let p = t.predict_with(
            |a| {
                if a == 0 {
                    Value::Num(30.0)
                } else {
                    Value::Cat(2)
                }
            },
            u32::MAX,
        );
        assert_eq!(p.label(), 1);
        let p = t.predict_with(
            |a| {
                if a == 0 {
                    Value::Num(50.0)
                } else {
                    Value::Cat(2)
                }
            },
            u32::MAX,
        );
        assert_eq!(p.label(), 0);
        let p = t.predict_with(
            |a| {
                if a == 0 {
                    Value::Num(50.0)
                } else {
                    Value::Cat(1)
                }
            },
            u32::MAX,
        );
        assert_eq!(p.label(), 1);
    }

    #[test]
    fn predict_stops_at_depth_cap() {
        let t = two_level_tree();
        // Depth cap 0: report root prediction regardless of values.
        let p = t.predict_with(|_| Value::Num(30.0), 0);
        assert_eq!(p.label(), 0);
        assert_eq!(p.pmf(), &[0.7, 0.3]);
        // Depth cap 1: may descend once.
        let p = t.predict_with(
            |a| {
                if a == 0 {
                    Value::Num(50.0)
                } else {
                    Value::Cat(2)
                }
            },
            1,
        );
        assert_eq!(p.label(), 0, "stops at node 2's own prediction");
    }

    #[test]
    fn predict_stops_on_missing_value() {
        let t = two_level_tree();
        let p = t.predict_with(|_| Value::Missing, u32::MAX);
        assert_eq!(p.label(), 0, "root prediction on missing root attribute");
        let p = t.predict_with(
            |a| {
                if a == 0 {
                    Value::Num(50.0)
                } else {
                    Value::Missing
                }
            },
            u32::MAX,
        );
        assert_eq!(p.label(), 0, "node 2's prediction on missing A1");
    }

    #[test]
    fn predict_stops_on_unseen_categorical_value() {
        let t = two_level_tree();
        // Code 0 was never seen at node 2 during training (seen = {1,2,3,4}).
        let p = t.predict_with(
            |a| {
                if a == 0 {
                    Value::Num(50.0)
                } else {
                    Value::Cat(0)
                }
            },
            u32::MAX,
        );
        assert_eq!(p.label(), 0, "unseen category stops at node 2");
    }

    #[test]
    fn graft_replaces_leaf_and_rebases() {
        let mut t = two_level_tree();
        let sub = DecisionTreeModel::new(
            vec![
                Node {
                    split: Some((
                        SplitInfo {
                            attr: 2,
                            test: SplitTest::NumericLe(1.0),
                            gain: 0.4,
                            missing_left: true,
                            seen: None,
                        },
                        1,
                        2,
                    )),
                    prediction: Prediction::Class {
                        label: 1,
                        pmf: vec![0.5, 0.5],
                    },
                    n_rows: 5,
                    depth: 0,
                },
                Node::leaf(
                    Prediction::Class {
                        label: 0,
                        pmf: vec![1.0, 0.0],
                    },
                    2,
                    1,
                ),
                Node::leaf(
                    Prediction::Class {
                        label: 1,
                        pmf: vec![0.0, 1.0],
                    },
                    3,
                    1,
                ),
            ],
            Task::Classification { n_classes: 2 },
        );
        t.graft(1, sub);
        assert_eq!(t.n_nodes(), 7);
        // The graft target keeps depth 1, its children get depth 2.
        assert_eq!(t.nodes[1].depth, 1);
        let (_, l, r) = t.nodes[1].split.clone().unwrap();
        assert_eq!((t.nodes[l].depth, t.nodes[r].depth), (2, 2));
        // Walking left at root then A2 <= 1.0 reaches the grafted leaf.
        let p = t.predict_with(
            |a| match a {
                0 => Value::Num(30.0),
                2 => Value::Num(0.5),
                _ => Value::Cat(2),
            },
            u32::MAX,
        );
        assert_eq!(p.label(), 0);
        // Arena invariants still hold.
        let rebuilt = DecisionTreeModel::new(t.nodes.clone(), t.task);
        assert_eq!(rebuilt.n_nodes(), 7);
    }

    #[test]
    #[should_panic(expected = "graft target must be a leaf")]
    fn graft_on_internal_node_panics() {
        let mut t = two_level_tree();
        let sub = DecisionTreeModel::new(
            vec![Node::leaf(
                Prediction::Class {
                    label: 0,
                    pmf: vec![1.0, 0.0],
                },
                1,
                0,
            )],
            Task::Classification { n_classes: 2 },
        );
        t.graft(0, sub);
    }

    #[test]
    fn render_shows_structure() {
        let t = two_level_tree();
        let text = t.render(|a| format!("A{a}"));
        assert!(text.contains("A0 <= 40.0000"), "{text}");
        assert!(text.contains("A1 in [2, 3, 4]"), "{text}");
        assert_eq!(text.lines().count(), 5, "one line per node:\n{text}");
        // Leaves are indented under their parents.
        assert!(text.lines().any(|l| l.starts_with("    leaf:")), "{text}");
    }

    #[test]
    fn json_roundtrip() {
        let t = two_level_tree();
        let j = t.to_json();
        let back = DecisionTreeModel::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn predict_table_helpers() {
        let t = two_level_tree();
        let table = DataTable::new(
            Schema::new(
                vec![AttrMeta::numeric("age"), AttrMeta::categorical("edu", 5)],
                Task::Classification { n_classes: 2 },
            ),
            vec![
                Column::Numeric(vec![30.0, 50.0]),
                Column::Categorical(vec![2, 1]),
            ],
            Labels::Class(vec![1, 1]),
        );
        assert_eq!(t.predict_labels(&table), vec![1, 1]);
    }

    #[test]
    fn counts_and_depth() {
        let t = two_level_tree();
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    #[should_panic(expected = "children must follow")]
    fn bad_child_order_panics() {
        let nodes = vec![
            Node {
                split: Some((
                    SplitInfo {
                        attr: 0,
                        test: SplitTest::NumericLe(0.0),
                        gain: 0.0,
                        missing_left: true,
                        seen: None,
                    },
                    0,
                    1,
                )),
                prediction: Prediction::Real(0.0),
                n_rows: 1,
                depth: 0,
            },
            Node::leaf(Prediction::Real(0.0), 1, 1),
        ];
        DecisionTreeModel::new(nodes, Task::Regression);
    }
}
