//! A simulated distributed file system with the paper's data layout.
//!
//! TreeServer requires a dedicated `put` program so that, on HDFS, each
//! data column is stored as a loadable unit; to keep file counts small and
//! to also serve the row-partitioned jobs of the deep-forest pipeline, the
//! final layout groups **columns into column-groups and rows into
//! row-groups**, one file per (column-group, row-group) cell (paper §VII,
//! Fig. 13).
//!
//! This crate reproduces that layout over a local directory. The HDFS
//! property the paper's discussion hinges on — *connection time dominates
//! small reads* — is modelled by an explicit per-file-open
//! [`DfsConfig::connection_cost`] plus an open-file counter, so the
//! file-count trade-off the layout exists to solve is measurable in tests
//! and benches.
//!
//! Layout on disk for a dataset `name` with `G` column-groups and `R`
//! row-groups:
//!
//! ```text
//! <root>/<name>/meta.json            # schema, task, group sizes
//! <root>/<name>/cg<g>_rg<r>.bin      # columns of group g, rows of group r
//! <root>/<name>/labels_rg<r>.bin     # target values, rows of group r
//! ```

mod format;

pub use format::FormatError;

use format::{read_columns, read_labels, write_columns, write_labels};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ts_datatable::{Column, DataTable, Labels, Schema};
use tsjson::{Deserialize, Serialize};

/// Configuration of the simulated DFS.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Directory that plays the role of the HDFS namespace.
    pub root: PathBuf,
    /// Cost charged (slept) on every file open, modelling HDFS connection
    /// setup. `Duration::ZERO` disables pacing but opens are still counted.
    pub connection_cost: Duration,
}

impl DfsConfig {
    /// A DFS rooted at `root` with no connection pacing.
    pub fn local(root: impl Into<PathBuf>) -> DfsConfig {
        DfsConfig {
            root: root.into(),
            connection_cost: Duration::ZERO,
        }
    }
}

/// Dataset metadata persisted next to the data files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfsTableMeta {
    /// The table schema.
    pub schema: Schema,
    /// Total rows.
    pub n_rows: usize,
    /// Columns per column-group (the last group may be smaller).
    pub col_group_size: usize,
    /// Rows per row-group (the last group may be smaller).
    pub row_group_size: usize,
}

impl DfsTableMeta {
    /// Number of column-groups `G`.
    pub fn n_col_groups(&self) -> usize {
        div_ceil(self.schema.n_attrs(), self.col_group_size)
    }

    /// Number of row-groups `R`.
    pub fn n_row_groups(&self) -> usize {
        div_ceil(self.n_rows, self.row_group_size)
    }

    /// The global attribute ids in column-group `g`.
    pub fn col_group_attrs(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.col_group_size;
        start..(start + self.col_group_size).min(self.schema.n_attrs())
    }

    /// The global row ids in row-group `r`.
    pub fn row_group_rows(&self, r: usize) -> std::ops::Range<usize> {
        let start = r * self.row_group_size;
        start..(start + self.row_group_size).min(self.n_rows)
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Errors from DFS operations.
#[derive(Debug)]
pub enum DfsError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Corrupt or mismatched file contents.
    Format(FormatError),
    /// Metadata JSON failed to parse.
    Meta(tsjson::Error),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::Io(e) => write!(f, "dfs io error: {e}"),
            DfsError::Format(e) => write!(f, "dfs format error: {e}"),
            DfsError::Meta(e) => write!(f, "dfs metadata error: {e}"),
        }
    }
}

impl std::error::Error for DfsError {}

impl From<io::Error> for DfsError {
    fn from(e: io::Error) -> Self {
        DfsError::Io(e)
    }
}

impl From<FormatError> for DfsError {
    fn from(e: FormatError) -> Self {
        DfsError::Format(e)
    }
}

/// Handle to the simulated DFS namespace.
#[derive(Debug, Clone)]
pub struct Dfs {
    config: DfsConfig,
    opens: Arc<AtomicU64>,
}

impl Dfs {
    /// Opens (creating if needed) the namespace directory.
    pub fn new(config: DfsConfig) -> Result<Dfs, DfsError> {
        std::fs::create_dir_all(&config.root)?;
        Ok(Dfs {
            config,
            opens: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Total file opens charged so far (put + load).
    pub fn files_opened(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    fn dataset_dir(&self, name: &str) -> PathBuf {
        self.config.root.join(name)
    }

    fn charge_open(&self) {
        self.opens.fetch_add(1, Ordering::Relaxed);
        if !self.config.connection_cost.is_zero() {
            std::thread::sleep(self.config.connection_cost);
        }
    }

    /// The dedicated "put" program: uploads `table` as the grouped layout.
    ///
    /// Memory behaviour mirrors the paper's streaming put: data is written
    /// one (column-group, row-group) cell at a time, so peak extra memory is
    /// one cell, not the table.
    pub fn put_table(
        &self,
        name: &str,
        table: &DataTable,
        col_group_size: usize,
        row_group_size: usize,
    ) -> Result<DfsTableMeta, DfsError> {
        assert!(
            col_group_size > 0 && row_group_size > 0,
            "group sizes must be positive"
        );
        let meta = DfsTableMeta {
            schema: table.schema().clone(),
            n_rows: table.n_rows(),
            col_group_size,
            row_group_size,
        };
        let dir = self.dataset_dir(name);
        std::fs::create_dir_all(&dir)?;
        self.charge_open();
        std::fs::write(
            dir.join("meta.json"),
            tsjson::to_vec_pretty(&meta).map_err(DfsError::Meta)?,
        )?;
        for r in 0..meta.n_row_groups() {
            let rows: Vec<u32> = meta.row_group_rows(r).map(|x| x as u32).collect();
            for g in 0..meta.n_col_groups() {
                let cols: Vec<Column> = meta
                    .col_group_attrs(g)
                    .map(|a| table.gather(a, &rows).into_column())
                    .collect();
                self.charge_open();
                std::fs::write(dir.join(format!("cg{g}_rg{r}.bin")), write_columns(&cols))?;
            }
            self.charge_open();
            std::fs::write(
                dir.join(format!("labels_rg{r}.bin")),
                write_labels(&table.labels().gather(&rows)),
            )?;
        }
        Ok(meta)
    }

    /// Opens a dataset for reading.
    pub fn open(&self, name: &str) -> Result<DfsTable, DfsError> {
        let dir = self.dataset_dir(name);
        self.charge_open();
        let meta: DfsTableMeta =
            tsjson::from_slice(&std::fs::read(dir.join("meta.json"))?).map_err(DfsError::Meta)?;
        Ok(DfsTable {
            dfs: self.clone(),
            dir,
            meta,
        })
    }
}

/// A readable dataset in the DFS.
#[derive(Debug, Clone)]
pub struct DfsTable {
    dfs: Dfs,
    dir: PathBuf,
    meta: DfsTableMeta,
}

impl DfsTable {
    /// The dataset metadata.
    pub fn meta(&self) -> &DfsTableMeta {
        &self.meta
    }

    fn read_cell(&self, g: usize, r: usize) -> Result<Vec<Column>, DfsError> {
        self.dfs.charge_open();
        let bytes = std::fs::read(self.dir.join(format!("cg{g}_rg{r}.bin")))?;
        Ok(read_columns(&bytes)?)
    }

    /// Loads an entire column-group (all its columns, all rows) by reading
    /// the `R` files in that column — what a TreeServer worker does at job
    /// start (paper Fig. 13, "load a column-group by reading files in the
    /// same column").
    pub fn load_column_group(&self, g: usize) -> Result<Vec<Column>, DfsError> {
        assert!(g < self.meta.n_col_groups(), "column-group out of range");
        let n_cols = self.meta.col_group_attrs(g).len();
        let mut acc: Vec<Column> = Vec::with_capacity(n_cols);
        for r in 0..self.meta.n_row_groups() {
            let cell = self.read_cell(g, r)?;
            if r == 0 {
                acc = cell;
            } else {
                for (a, c) in acc.iter_mut().zip(cell) {
                    append_column(a, c);
                }
            }
        }
        Ok(acc)
    }

    /// Loads one row-group across all column-groups (full rows) — what the
    /// deep-forest row-parallel jobs do ("load its partition of rows by
    /// reading files in the same row").
    pub fn load_row_group(&self, r: usize) -> Result<Vec<Column>, DfsError> {
        assert!(r < self.meta.n_row_groups(), "row-group out of range");
        let mut cols = Vec::with_capacity(self.meta.schema.n_attrs());
        for g in 0..self.meta.n_col_groups() {
            cols.extend(self.read_cell(g, r)?);
        }
        Ok(cols)
    }

    /// Loads the full label column (every machine holds `Y` in its entirety).
    pub fn load_labels(&self) -> Result<Labels, DfsError> {
        let mut acc: Option<Labels> = None;
        for r in 0..self.meta.n_row_groups() {
            let l = self.load_labels_row_group(r)?;
            acc = Some(match acc {
                None => l,
                Some(a) => append_labels(a, l),
            });
        }
        Ok(acc.expect("dataset has at least one row-group"))
    }

    /// Loads the labels of one row-group.
    pub fn load_labels_row_group(&self, r: usize) -> Result<Labels, DfsError> {
        self.dfs.charge_open();
        let bytes = std::fs::read(self.dir.join(format!("labels_rg{r}.bin")))?;
        Ok(read_labels(&bytes)?)
    }

    /// Reconstructs the whole table (tests, small jobs).
    pub fn load_all(&self) -> Result<DataTable, DfsError> {
        let mut cols: Vec<Column> = Vec::with_capacity(self.meta.schema.n_attrs());
        for g in 0..self.meta.n_col_groups() {
            cols.extend(self.load_column_group(g)?);
        }
        let labels = self.load_labels()?;
        Ok(DataTable::new(self.meta.schema.clone(), cols, labels))
    }
}

fn append_column(acc: &mut Column, more: Column) {
    match (acc, more) {
        (Column::Numeric(a), Column::Numeric(b)) => a.extend(b),
        (Column::Categorical(a), Column::Categorical(b)) => a.extend(b),
        _ => panic!("column kind changed between row-groups"),
    }
}

fn append_labels(acc: Labels, more: Labels) -> Labels {
    match (acc, more) {
        (Labels::Class(mut a), Labels::Class(b)) => {
            a.extend(b);
            Labels::Class(a)
        }
        (Labels::Real(mut a), Labels::Real(b)) => {
            a.extend(b);
            Labels::Real(a)
        }
        _ => panic!("label kind changed between row-groups"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::{generate, SynthSpec};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ts-dfs-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_table() -> DataTable {
        generate(&SynthSpec {
            rows: 103,
            numeric: 5,
            categorical: 3,
            missing_rate: 0.1,
            seed: 7,
            ..Default::default()
        })
    }

    #[test]
    fn put_then_load_all_roundtrips() {
        let dfs = Dfs::new(DfsConfig::local(tmpdir("roundtrip"))).unwrap();
        let t = sample_table();
        dfs.put_table("d", &t, 3, 40).unwrap();
        let loaded = dfs.open("d").unwrap().load_all().unwrap();
        // NaN != NaN, so compare payload bytes and a missing-count census
        // instead of PartialEq on the raw tables.
        assert_eq!(loaded.n_rows(), t.n_rows());
        assert_eq!(loaded.schema(), t.schema());
        for a in 0..t.n_attrs() {
            assert_eq!(
                loaded.column(a).n_missing(),
                t.column(a).n_missing(),
                "col {a}"
            );
            match (t.column(a), loaded.column(a)) {
                (Column::Categorical(x), Column::Categorical(y)) => assert_eq!(x, y),
                (Column::Numeric(x), Column::Numeric(y)) => {
                    assert!(x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()));
                }
                _ => panic!("kind changed"),
            }
        }
        assert_eq!(loaded.labels(), t.labels());
    }

    #[test]
    fn group_geometry() {
        let meta = DfsTableMeta {
            schema: sample_table().schema().clone(), // 8 attrs
            n_rows: 103,
            col_group_size: 3,
            row_group_size: 40,
        };
        assert_eq!(meta.n_col_groups(), 3);
        assert_eq!(meta.n_row_groups(), 3);
        assert_eq!(meta.col_group_attrs(2), 6..8);
        assert_eq!(meta.row_group_rows(2), 80..103);
    }

    #[test]
    fn load_column_group_matches_table_columns() {
        let dfs = Dfs::new(DfsConfig::local(tmpdir("cg"))).unwrap();
        let t = sample_table();
        dfs.put_table("d", &t, 3, 25).unwrap();
        let dt = dfs.open("d").unwrap();
        let cg1 = dt.load_column_group(1).unwrap(); // attrs 3..6
        assert_eq!(cg1.len(), 3);
        assert_eq!(cg1[0].len(), 103);
        if let (Column::Numeric(a), Column::Numeric(b)) = (&cg1[1], t.column(4)) {
            assert!(a.iter().zip(b).all(|(p, q)| p.to_bits() == q.to_bits()));
        } else {
            // attr 4 is numeric in this spec
            panic!("expected numeric column");
        }
    }

    #[test]
    fn load_row_group_returns_full_width_rows() {
        let dfs = Dfs::new(DfsConfig::local(tmpdir("rg"))).unwrap();
        let t = sample_table();
        dfs.put_table("d", &t, 4, 50).unwrap();
        let dt = dfs.open("d").unwrap();
        let rg2 = dt.load_row_group(2).unwrap(); // rows 100..103
        assert_eq!(rg2.len(), t.n_attrs());
        assert!(rg2.iter().all(|c| c.len() == 3));
        let labels = dt.load_labels_row_group(2).unwrap();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn file_open_counting_reflects_grouping() {
        // Fewer, bigger groups -> fewer file opens: the paper's motivation
        // for column-grouping (HDFS connection time dominates small reads).
        let t = sample_table(); // 8 attrs, 103 rows
        let dfs_fine = Dfs::new(DfsConfig::local(tmpdir("fine"))).unwrap();
        dfs_fine.put_table("d", &t, 1, 20).unwrap();
        let before = dfs_fine.files_opened();
        let dt = dfs_fine.open("d").unwrap();
        for g in 0..dt.meta().n_col_groups() {
            dt.load_column_group(g).unwrap();
        }
        let fine_opens = dfs_fine.files_opened() - before;

        let dfs_coarse = Dfs::new(DfsConfig::local(tmpdir("coarse"))).unwrap();
        dfs_coarse.put_table("d", &t, 4, 60).unwrap();
        let before = dfs_coarse.files_opened();
        let dt = dfs_coarse.open("d").unwrap();
        for g in 0..dt.meta().n_col_groups() {
            dt.load_column_group(g).unwrap();
        }
        let coarse_opens = dfs_coarse.files_opened() - before;
        assert!(
            coarse_opens * 4 < fine_opens,
            "coarse {coarse_opens} vs fine {fine_opens}"
        );
    }

    #[test]
    fn connection_cost_paces_opens() {
        let mut cfg = DfsConfig::local(tmpdir("paced"));
        cfg.connection_cost = Duration::from_millis(5);
        let dfs = Dfs::new(cfg).unwrap();
        let t = sample_table();
        let start = std::time::Instant::now();
        dfs.put_table("d", &t, 8, 200).unwrap(); // 1 cg x 1 rg => 3 opens
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn open_missing_dataset_errors() {
        let dfs = Dfs::new(DfsConfig::local(tmpdir("missing"))).unwrap();
        assert!(matches!(dfs.open("nope"), Err(DfsError::Io(_))));
    }

    #[test]
    fn regression_labels_roundtrip() {
        let dfs = Dfs::new(DfsConfig::local(tmpdir("reg"))).unwrap();
        let t = generate(&SynthSpec {
            rows: 37,
            numeric: 2,
            task: ts_datatable::Task::Regression,
            seed: 1,
            ..Default::default()
        });
        dfs.put_table("d", &t, 2, 10).unwrap();
        let labels = dfs.open("d").unwrap().load_labels().unwrap();
        assert_eq!(&labels, t.labels());
    }
}
