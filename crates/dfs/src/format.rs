//! Binary on-disk format for column and label files.
//!
//! Deliberately simple and self-describing: a magic byte per file kind, a
//! column count, then per column a type tag, a length and raw little-endian
//! values. Missing values travel in-band (`NaN` bits / `MISSING_CAT`).

use ts_datatable::{Column, Labels};

const MAGIC_COLUMNS: u8 = 0xC1;
const MAGIC_LABELS: u8 = 0xC2;
const TAG_NUMERIC: u8 = 0;
const TAG_CATEGORICAL: u8 = 1;
const TAG_CLASS: u8 = 2;
const TAG_REAL: u8 = 3;

/// Corrupt-file errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// File is shorter than its header/payload claims.
    Truncated,
    /// Unknown magic byte.
    BadMagic(u8),
    /// Unknown column/label type tag.
    BadTag(u8),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated => write!(f, "file truncated"),
            FormatError::BadMagic(m) => write!(f, "bad magic byte {m:#x}"),
            FormatError::BadTag(t) => write!(f, "bad type tag {t}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Little-endian cursor over a byte slice; bounds are checked by the
/// callers via [`Reader::remaining`] before each fixed-size read.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.bytes.split_at(N);
        self.bytes = tail;
        head.try_into().expect("split_at returned N bytes")
    }

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }
}

/// Serialises a set of columns into one file body.
pub fn write_columns(cols: &[Column]) -> Vec<u8> {
    let payload: usize = cols
        .iter()
        .map(|c| 1 + 8 + c.payload_bytes())
        .sum::<usize>();
    let mut buf = Vec::with_capacity(1 + 4 + payload);
    buf.push(MAGIC_COLUMNS);
    buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for c in cols {
        match c {
            Column::Numeric(v) => {
                buf.push(TAG_NUMERIC);
                buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for &x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::Categorical(v) => {
                buf.push(TAG_CATEGORICAL);
                buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for &x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
    }
    buf
}

/// Parses a column file body.
pub fn read_columns(bytes: &[u8]) -> Result<Vec<Column>, FormatError> {
    let mut bytes = Reader::new(bytes);
    if bytes.remaining() < 5 {
        return Err(FormatError::Truncated);
    }
    let magic = bytes.get_u8();
    if magic != MAGIC_COLUMNS {
        return Err(FormatError::BadMagic(magic));
    }
    let n_cols = bytes.get_u32_le() as usize;
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        if bytes.remaining() < 9 {
            return Err(FormatError::Truncated);
        }
        let tag = bytes.get_u8();
        let len = bytes.get_u64_le() as usize;
        match tag {
            TAG_NUMERIC => {
                if bytes.remaining() < len * 8 {
                    return Err(FormatError::Truncated);
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(bytes.get_f64_le());
                }
                cols.push(Column::Numeric(v));
            }
            TAG_CATEGORICAL => {
                if bytes.remaining() < len * 4 {
                    return Err(FormatError::Truncated);
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(bytes.get_u32_le());
                }
                cols.push(Column::Categorical(v));
            }
            t => return Err(FormatError::BadTag(t)),
        }
    }
    Ok(cols)
}

/// Serialises a label slice into one file body.
pub fn write_labels(labels: &Labels) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + 1 + 8 + labels.payload_bytes());
    buf.push(MAGIC_LABELS);
    match labels {
        Labels::Class(v) => {
            buf.push(TAG_CLASS);
            buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Labels::Real(v) => {
            buf.push(TAG_REAL);
            buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    buf
}

/// Parses a label file body.
pub fn read_labels(bytes: &[u8]) -> Result<Labels, FormatError> {
    let mut bytes = Reader::new(bytes);
    if bytes.remaining() < 10 {
        return Err(FormatError::Truncated);
    }
    let magic = bytes.get_u8();
    if magic != MAGIC_LABELS {
        return Err(FormatError::BadMagic(magic));
    }
    let tag = bytes.get_u8();
    let len = bytes.get_u64_le() as usize;
    match tag {
        TAG_CLASS => {
            if bytes.remaining() < len * 4 {
                return Err(FormatError::Truncated);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(bytes.get_u32_le());
            }
            Ok(Labels::Class(v))
        }
        TAG_REAL => {
            if bytes.remaining() < len * 8 {
                return Err(FormatError::Truncated);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(bytes.get_f64_le());
            }
            Ok(Labels::Real(v))
        }
        t => Err(FormatError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::MISSING_CAT;

    #[test]
    fn columns_roundtrip_with_missing() {
        let cols = vec![
            Column::Numeric(vec![1.5, f64::NAN, -3.0]),
            Column::Categorical(vec![0, MISSING_CAT, 7]),
        ];
        let bytes = write_columns(&cols);
        let back = read_columns(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        match (&back[0], &cols[0]) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()))
            }
            _ => panic!(),
        }
        assert_eq!(back[1], cols[1]);
    }

    #[test]
    fn labels_roundtrip() {
        for l in [Labels::Class(vec![1, 2, 3]), Labels::Real(vec![0.5, -1.0])] {
            let bytes = write_labels(&l);
            assert_eq!(read_labels(&bytes).unwrap(), l);
        }
    }

    #[test]
    fn truncated_files_error() {
        let bytes = write_columns(&[Column::Numeric(vec![1.0, 2.0])]);
        assert_eq!(
            read_columns(&bytes[..bytes.len() - 4]),
            Err(FormatError::Truncated)
        );
        assert_eq!(read_columns(&[]), Err(FormatError::Truncated));
        let l = write_labels(&Labels::Real(vec![1.0]));
        assert_eq!(read_labels(&l[..5]), Err(FormatError::Truncated));
    }

    #[test]
    fn bad_magic_and_tag_error() {
        assert_eq!(
            read_columns(&[0xFF, 0, 0, 0, 0]),
            Err(FormatError::BadMagic(0xFF))
        );
        let mut bytes = write_columns(&[Column::Numeric(vec![])]).to_vec();
        bytes[5] = 9; // corrupt the first column's tag
        assert_eq!(read_columns(&bytes), Err(FormatError::BadTag(9)));
        let mut l = write_labels(&Labels::Class(vec![])).to_vec();
        l[1] = 9;
        assert_eq!(read_labels(&l), Err(FormatError::BadTag(9)));
    }

    #[test]
    fn empty_column_set_roundtrips() {
        let bytes = write_columns(&[]);
        assert_eq!(read_columns(&bytes).unwrap(), Vec::<Column>::new());
    }
}
