//! Binary on-disk format for column and label files.
//!
//! Deliberately simple and self-describing: a magic byte per file kind, a
//! column count, then per column a type tag, a length and raw little-endian
//! values. Missing values travel in-band (`NaN` bits / `MISSING_CAT`).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ts_datatable::{Column, Labels};

const MAGIC_COLUMNS: u8 = 0xC1;
const MAGIC_LABELS: u8 = 0xC2;
const TAG_NUMERIC: u8 = 0;
const TAG_CATEGORICAL: u8 = 1;
const TAG_CLASS: u8 = 2;
const TAG_REAL: u8 = 3;

/// Corrupt-file errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// File is shorter than its header/payload claims.
    Truncated,
    /// Unknown magic byte.
    BadMagic(u8),
    /// Unknown column/label type tag.
    BadTag(u8),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated => write!(f, "file truncated"),
            FormatError::BadMagic(m) => write!(f, "bad magic byte {m:#x}"),
            FormatError::BadTag(t) => write!(f, "bad type tag {t}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serialises a set of columns into one file body.
pub fn write_columns(cols: &[Column]) -> Bytes {
    let payload: usize = cols
        .iter()
        .map(|c| 1 + 8 + c.payload_bytes())
        .sum::<usize>();
    let mut buf = BytesMut::with_capacity(1 + 4 + payload);
    buf.put_u8(MAGIC_COLUMNS);
    buf.put_u32_le(cols.len() as u32);
    for c in cols {
        match c {
            Column::Numeric(v) => {
                buf.put_u8(TAG_NUMERIC);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    buf.put_f64_le(x);
                }
            }
            Column::Categorical(v) => {
                buf.put_u8(TAG_CATEGORICAL);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    buf.put_u32_le(x);
                }
            }
        }
    }
    buf.freeze()
}

/// Parses a column file body.
pub fn read_columns(mut bytes: &[u8]) -> Result<Vec<Column>, FormatError> {
    if bytes.remaining() < 5 {
        return Err(FormatError::Truncated);
    }
    let magic = bytes.get_u8();
    if magic != MAGIC_COLUMNS {
        return Err(FormatError::BadMagic(magic));
    }
    let n_cols = bytes.get_u32_le() as usize;
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        if bytes.remaining() < 9 {
            return Err(FormatError::Truncated);
        }
        let tag = bytes.get_u8();
        let len = bytes.get_u64_le() as usize;
        match tag {
            TAG_NUMERIC => {
                if bytes.remaining() < len * 8 {
                    return Err(FormatError::Truncated);
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(bytes.get_f64_le());
                }
                cols.push(Column::Numeric(v));
            }
            TAG_CATEGORICAL => {
                if bytes.remaining() < len * 4 {
                    return Err(FormatError::Truncated);
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(bytes.get_u32_le());
                }
                cols.push(Column::Categorical(v));
            }
            t => return Err(FormatError::BadTag(t)),
        }
    }
    Ok(cols)
}

/// Serialises a label slice into one file body.
pub fn write_labels(labels: &Labels) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 1 + 8 + labels.payload_bytes());
    buf.put_u8(MAGIC_LABELS);
    match labels {
        Labels::Class(v) => {
            buf.put_u8(TAG_CLASS);
            buf.put_u64_le(v.len() as u64);
            for &x in v {
                buf.put_u32_le(x);
            }
        }
        Labels::Real(v) => {
            buf.put_u8(TAG_REAL);
            buf.put_u64_le(v.len() as u64);
            for &x in v {
                buf.put_f64_le(x);
            }
        }
    }
    buf.freeze()
}

/// Parses a label file body.
pub fn read_labels(mut bytes: &[u8]) -> Result<Labels, FormatError> {
    if bytes.remaining() < 10 {
        return Err(FormatError::Truncated);
    }
    let magic = bytes.get_u8();
    if magic != MAGIC_LABELS {
        return Err(FormatError::BadMagic(magic));
    }
    let tag = bytes.get_u8();
    let len = bytes.get_u64_le() as usize;
    match tag {
        TAG_CLASS => {
            if bytes.remaining() < len * 4 {
                return Err(FormatError::Truncated);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(bytes.get_u32_le());
            }
            Ok(Labels::Class(v))
        }
        TAG_REAL => {
            if bytes.remaining() < len * 8 {
                return Err(FormatError::Truncated);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(bytes.get_f64_le());
            }
            Ok(Labels::Real(v))
        }
        t => Err(FormatError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::MISSING_CAT;

    #[test]
    fn columns_roundtrip_with_missing() {
        let cols = vec![
            Column::Numeric(vec![1.5, f64::NAN, -3.0]),
            Column::Categorical(vec![0, MISSING_CAT, 7]),
        ];
        let bytes = write_columns(&cols);
        let back = read_columns(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        match (&back[0], &cols[0]) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()))
            }
            _ => panic!(),
        }
        assert_eq!(back[1], cols[1]);
    }

    #[test]
    fn labels_roundtrip() {
        for l in [Labels::Class(vec![1, 2, 3]), Labels::Real(vec![0.5, -1.0])] {
            let bytes = write_labels(&l);
            assert_eq!(read_labels(&bytes).unwrap(), l);
        }
    }

    #[test]
    fn truncated_files_error() {
        let bytes = write_columns(&[Column::Numeric(vec![1.0, 2.0])]);
        assert_eq!(read_columns(&bytes[..bytes.len() - 4]), Err(FormatError::Truncated));
        assert_eq!(read_columns(&[]), Err(FormatError::Truncated));
        let l = write_labels(&Labels::Real(vec![1.0]));
        assert_eq!(read_labels(&l[..5]), Err(FormatError::Truncated));
    }

    #[test]
    fn bad_magic_and_tag_error() {
        assert_eq!(read_columns(&[0xFF, 0, 0, 0, 0]), Err(FormatError::BadMagic(0xFF)));
        let mut bytes = write_columns(&[Column::Numeric(vec![])]).to_vec();
        bytes[5] = 9; // corrupt the first column's tag
        assert_eq!(read_columns(&bytes), Err(FormatError::BadTag(9)));
        let mut l = write_labels(&Labels::Class(vec![])).to_vec();
        l[1] = 9;
        assert_eq!(read_labels(&l), Err(FormatError::BadTag(9)));
    }

    #[test]
    fn empty_column_set_roundtrips() {
        let bytes = write_columns(&[]);
        assert_eq!(read_columns(&bytes).unwrap(), Vec::<Column>::new());
    }
}
