//! Property tests for the simulated DFS: any table survives the
//! column-group × row-group layout under any group geometry.

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{Column, Task};
use ts_dfs::{Dfs, DfsConfig};
use tscheck::prelude::*;

fn bits_equal(a: &Column, b: &Column) -> bool {
    match (a, b) {
        (Column::Numeric(x), Column::Numeric(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Column::Categorical(x), Column::Categorical(y)) => x == y,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// put → load_all round-trips bit-exactly for any geometry, including
    /// group sizes larger than the table and missing values in both column
    /// kinds.
    #[test]
    fn roundtrip_any_geometry(
        rows in 1usize..300,
        numeric in 0usize..4,
        categorical in 0usize..4,
        col_group in 1usize..10,
        row_group in 1usize..400,
        regression in any::<bool>(),
        seed in 0u64..1000,
    ) {
        if numeric + categorical == 0 {
            return Ok(());
        }
        let t = generate(&SynthSpec {
            rows,
            numeric,
            categorical,
            cat_cardinality: 4,
            task: if regression { Task::Regression } else { Task::Classification { n_classes: 3 } },
            missing_rate: 0.1,
            noise: 0.1,
            concept_depth: 3,
            latent: 0,
            seed,
        });
        let dir = std::env::temp_dir().join(format!(
            "ts-dfs-prop-{}-{}", std::process::id(), seed ^ (rows as u64) << 16
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dfs = Dfs::new(DfsConfig::local(&dir)).unwrap();
        let meta = dfs.put_table("t", &t, col_group, row_group).unwrap();
        prop_assert_eq!(meta.n_col_groups(), t.n_attrs().div_ceil(col_group));
        prop_assert_eq!(meta.n_row_groups(), rows.div_ceil(row_group));

        let back = dfs.open("t").unwrap().load_all().unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for a in 0..t.n_attrs() {
            prop_assert!(bits_equal(back.column(a), t.column(a)), "column {}", a);
        }
        prop_assert_eq!(back.labels(), t.labels());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Column-group and row-group views agree with the table cell-for-cell.
    #[test]
    fn group_views_agree_with_table(
        rows in 1usize..150,
        col_group in 1usize..5,
        row_group in 1usize..200,
        seed in 0u64..500,
    ) {
        let t = generate(&SynthSpec {
            rows,
            numeric: 3,
            categorical: 1,
            cat_cardinality: 4,
            concept_depth: 3,
            seed,
            ..Default::default()
        });
        let dir = std::env::temp_dir().join(format!(
            "ts-dfs-prop2-{}-{}", std::process::id(), seed ^ (rows as u64) << 20
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dfs = Dfs::new(DfsConfig::local(&dir)).unwrap();
        let meta = dfs.put_table("t", &t, col_group, row_group).unwrap();
        let dt = dfs.open("t").unwrap();

        // Column-group view: whole columns.
        for g in 0..meta.n_col_groups() {
            let cols = dt.load_column_group(g).unwrap();
            for (i, a) in meta.col_group_attrs(g).enumerate() {
                prop_assert!(bits_equal(&cols[i], t.column(a)), "cg {} attr {}", g, a);
            }
        }
        // Row-group view: full-width row slices.
        for r in 0..meta.n_row_groups() {
            let cols = dt.load_row_group(r).unwrap();
            let range = meta.row_group_rows(r);
            prop_assert_eq!(cols.len(), t.n_attrs());
            for c in &cols {
                prop_assert_eq!(c.len(), range.len());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
