//! Span identity and causal context propagation.
//!
//! A *span* is one unit of causally-connected work: a job, one `Bplan`
//! entry, one column task (all its shards share the span) or one subtree
//! task. Span ids are allocated by the master — the only machine that
//! creates work — from a single counter, so an id is unique cluster-wide
//! and `0` can serve as "no span". A [`TraceCtx`] (trace id + current span)
//! rides every engine frame as a plain field, which is how a worker's
//! events end up causally parented to the master's delegation across
//! machines: the worker copies the context out of the plan message into
//! its `SpanRecv` / `SpanActive` records and echoes it on results, and the
//! fabric stamps retransmissions and duplicate drops with the span of the
//! payload they carry.
//!
//! The types live in `ts-obs` (a zero-dependency crate) precisely so that
//! `treeserver`'s message structs can embed them unconditionally — context
//! propagation is part of the wire protocol, not of the optional
//! instrumentation (see `docs/PROTOCOL.md`).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Identifies one span. `0` is reserved for "none".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// The causal context a frame carries: which trace (= job) it belongs to
/// and which span originated it. [`TraceCtx::NONE`] marks control traffic
/// outside any trace (heartbeats, shutdown, replication).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// The trace id — the span id of the job at the root of the DAG.
    pub trace: u64,
    /// The originating span.
    pub span: SpanId,
}

impl TraceCtx {
    /// No context: control traffic outside any trace.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        span: SpanId::NONE,
    };

    /// A context for `span` inside `trace`.
    pub fn new(trace: u64, span: SpanId) -> TraceCtx {
        TraceCtx { trace, span }
    }

    /// Whether this is the null context.
    pub fn is_none(&self) -> bool {
        self.trace == 0 && self.span.is_none()
    }
}

/// What kind of work a span covers. Scalar and `Copy` so it can ride in a
/// ring [`Event`](crate::Event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// A whole training job (trace root).
    Job,
    /// One `Bplan` entry, from enqueue to dispatch.
    Plan,
    /// One column task (all shards share the span).
    ColumnTask,
    /// One subtree task.
    SubtreeTask,
    /// One serving-tier request, from admission to response (ts-front).
    Request,
}

impl SpanKind {
    /// A stable lowercase name, used in exported JSON.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Plan => "plan",
            SpanKind::ColumnTask => "column_task",
            SpanKind::SubtreeTask => "subtree_task",
            SpanKind::Request => "request",
        }
    }
}

/// How many completed spans a [`LatencyFeed`] window retains per kind.
const FEED_WINDOW: usize = 512;

/// Rolling task-latency quantiles, fed from completed column-task and
/// subtree-task spans. This is the observation half of adaptive
/// τ_D / τ_dfs: the master reads p50/p95 of recent task durations at any
/// instant, and the control half (`treeserver::sched::TauController`,
/// enabled by `ClusterConfig::adaptive_tau`) folds these snapshots into
/// the hybrid-scheduling thresholds; see `docs/SCHEDULING.md`. The feed
/// can also be logged per job (`ObsConfig::log_latency_feed`).
#[derive(Debug, Default)]
pub struct LatencyFeed {
    column_ns: Mutex<VecDeque<u64>>,
    subtree_ns: Mutex<VecDeque<u64>>,
    request_ns: Mutex<VecDeque<u64>>,
}

/// Quantiles of one kind's rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindLatency {
    /// Spans currently in the window.
    pub count: u64,
    /// Median duration (ns; 0 when empty).
    pub p50_ns: u64,
    /// 95th-percentile duration (ns; 0 when empty).
    pub p95_ns: u64,
}

/// A point-in-time read of the feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyFeedSnapshot {
    /// Column-task span durations.
    pub column: KindLatency,
    /// Subtree-task span durations.
    pub subtree: KindLatency,
    /// Serving-request span durations (ts-front admission → response).
    pub request: KindLatency,
}

fn push_window(win: &Mutex<VecDeque<u64>>, v: u64) {
    let mut w = win.lock().unwrap_or_else(|e| e.into_inner());
    if w.len() == FEED_WINDOW {
        w.pop_front();
    }
    w.push_back(v);
}

fn window_quantiles(win: &Mutex<VecDeque<u64>>) -> KindLatency {
    let w = win.lock().unwrap_or_else(|e| e.into_inner());
    if w.is_empty() {
        return KindLatency::default();
    }
    let mut sorted: Vec<u64> = w.iter().copied().collect();
    sorted.sort_unstable();
    let at = |q: f64| {
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    };
    KindLatency {
        count: sorted.len() as u64,
        p50_ns: at(0.5),
        p95_ns: at(0.95),
    }
}

impl LatencyFeed {
    /// Feeds one completed column-task span duration.
    pub fn record_column(&self, latency_ns: u64) {
        push_window(&self.column_ns, latency_ns);
    }

    /// Feeds one completed subtree-task span duration.
    pub fn record_subtree(&self, latency_ns: u64) {
        push_window(&self.subtree_ns, latency_ns);
    }

    /// Feeds one completed serving-request span duration.
    pub fn record_request(&self, latency_ns: u64) {
        push_window(&self.request_ns, latency_ns);
    }

    /// Rolling p50/p95 of every kind right now.
    pub fn snapshot(&self) -> LatencyFeedSnapshot {
        LatencyFeedSnapshot {
            column: window_quantiles(&self.column_ns),
            subtree: window_quantiles(&self.subtree_ns),
            request: window_quantiles(&self.request_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ctx_and_ids() {
        assert!(SpanId::NONE.is_none());
        assert!(!SpanId(3).is_none());
        assert!(TraceCtx::NONE.is_none());
        let ctx = TraceCtx::new(1, SpanId(2));
        assert!(!ctx.is_none());
        assert_eq!(ctx.trace, 1);
        assert_eq!(ctx.span, SpanId(2));
        assert_eq!(TraceCtx::default(), TraceCtx::NONE);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SpanKind::Job.name(), "job");
        assert_eq!(SpanKind::Plan.name(), "plan");
        assert_eq!(SpanKind::ColumnTask.name(), "column_task");
        assert_eq!(SpanKind::SubtreeTask.name(), "subtree_task");
        assert_eq!(SpanKind::Request.name(), "request");
    }

    #[test]
    fn feed_rolls_and_quantiles() {
        let feed = LatencyFeed::default();
        assert_eq!(feed.snapshot(), LatencyFeedSnapshot::default());
        for v in 1..=100u64 {
            feed.record_column(v * 10);
        }
        feed.record_subtree(7);
        feed.record_request(42);
        let snap = feed.snapshot();
        assert_eq!(snap.column.count, 100);
        assert_eq!(snap.column.p50_ns, 510);
        assert_eq!(snap.column.p95_ns, 950);
        assert_eq!(snap.subtree.count, 1);
        assert_eq!(snap.subtree.p50_ns, 7);
        assert_eq!(snap.subtree.p95_ns, 7);
        assert_eq!(snap.request.count, 1);
        assert_eq!(snap.request.p50_ns, 42);
        assert_eq!(snap.request.p95_ns, 42);
    }

    #[test]
    fn feed_window_is_bounded() {
        let feed = LatencyFeed::default();
        for _ in 0..600 {
            feed.record_column(1);
        }
        // The window holds the newest 512; old samples rolled out.
        feed.record_column(1_000_000);
        let snap = feed.snapshot();
        assert_eq!(snap.column.count, 512);
        assert_eq!(snap.column.p50_ns, 1);
        assert_eq!(snap.column.p95_ns, 1);
    }
}
