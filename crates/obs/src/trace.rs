//! Span-DAG reconstruction and critical-path analysis over recorded events.
//!
//! The engine records four span lifecycle marks ([`Event::SpanOpen`] /
//! [`Event::SpanRecv`] / [`Event::SpanActive`] / [`Event::SpanClose`])
//! plus per-task [`Event::TaskComputed`] compute marks. This module folds
//! them back into a [`SpanDag`] — every span's begin/end and its
//! queue/network intervals — and derives a [`TraceReport`]:
//!
//! - the **critical path** of the slowest-finishing job: the chain of
//!   spans from the job root down to its latest-closing descendant,
//!   decomposed into contiguous phase segments;
//! - **phase totals** (scheduling / network / queueing / split compute /
//!   gather) that sum *exactly* to the job's wall clock — the segment
//!   boundaries telescope by construction, so nothing is lost or double
//!   counted;
//! - per-span-kind **latency summaries** (exact p50/p95 over the trace's
//!   closed spans, not histogram-bucket approximations).
//!
//! Everything is built from `BTreeMap`s and explicitly ordered vectors:
//! given the same event log (same-seed virtual-clock replay), the report
//! JSON is byte-identical.

use crate::event::{Event, TimedEvent};
use crate::span::SpanKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Where critical-path time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Master-side work: queue wait in `Bplan`, result folding, job
    /// bookkeeping.
    Scheduling,
    /// Frames in flight (plan dispatch, result return), including pacing
    /// and fault-injected delay.
    Network,
    /// A column task sat in a worker's ready queue waiting for a comper.
    Queueing,
    /// Split kernels / subtree training on a comper.
    Compute,
    /// A subtree task assembling its dataset (`ReqCols`/`ReqIx` fan-in).
    Gather,
}

/// Fixed export order of the phases.
pub const PHASES: [Phase; 5] = [
    Phase::Scheduling,
    Phase::Network,
    Phase::Queueing,
    Phase::Compute,
    Phase::Gather,
];

impl Phase {
    /// A stable lowercase name, used in exported JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Scheduling => "scheduling",
            Phase::Network => "network",
            Phase::Queueing => "queueing",
            Phase::Compute => "compute",
            Phase::Gather => "gather",
        }
    }
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanInfo {
    /// The span id.
    pub span: u64,
    /// The trace (root job span) it belongs to.
    pub trace: u64,
    /// The parent span (0 for trace roots).
    pub parent: u64,
    /// What work it covers.
    pub kind: SpanKind,
    /// Job id / `TaskId.0` of the subject.
    pub subject: u64,
    /// When the master opened it.
    pub open_ns: u64,
    /// When the master closed it (`None` if it never closed — crash,
    /// revocation, or ring loss).
    pub close_ns: Option<u64>,
    /// Earliest `SpanRecv` (first machine to receive the work).
    pub recv_ns: Option<u64>,
    /// Earliest `SpanActive` (work started executing).
    pub active_ns: Option<u64>,
    /// Latest `TaskComputed` for the subject task (compute finished).
    pub computed_ns: Option<u64>,
    /// Machines that recorded a `SpanRecv`, ascending and deduplicated.
    pub recv_nodes: Vec<u32>,
    /// Child spans, ascending.
    pub children: Vec<u64>,
}

impl SpanInfo {
    /// Close-to-open duration, if closed.
    pub fn duration_ns(&self) -> Option<u64> {
        self.close_ns.map(|c| c.saturating_sub(self.open_ns))
    }
}

/// The reconstructed span DAG of a whole run (all traces).
#[derive(Debug, Clone, Default)]
pub struct SpanDag {
    spans: BTreeMap<u64, SpanInfo>,
}

impl SpanDag {
    /// Rebuilds the DAG from a recorded event log (any order).
    pub fn from_events(events: &[TimedEvent]) -> SpanDag {
        let mut spans: BTreeMap<u64, SpanInfo> = BTreeMap::new();
        for te in events {
            if let Event::SpanOpen {
                trace,
                span,
                parent,
                kind,
                subject,
            } = te.event
            {
                spans.entry(span).or_insert(SpanInfo {
                    span,
                    trace,
                    parent,
                    kind,
                    subject,
                    open_ns: te.ts_ns,
                    close_ns: None,
                    recv_ns: None,
                    active_ns: None,
                    computed_ns: None,
                    recv_nodes: Vec::new(),
                    children: Vec::new(),
                });
            }
        }
        // Task subject -> span, for correlating `TaskComputed` marks.
        let mut by_task: BTreeMap<u64, u64> = BTreeMap::new();
        for s in spans.values() {
            if matches!(s.kind, SpanKind::ColumnTask | SpanKind::SubtreeTask) {
                by_task.insert(s.subject, s.span);
            }
        }
        for te in events {
            match te.event {
                Event::SpanRecv { span, node } => {
                    if let Some(s) = spans.get_mut(&span) {
                        s.recv_ns = Some(s.recv_ns.map_or(te.ts_ns, |r| r.min(te.ts_ns)));
                        if let Err(at) = s.recv_nodes.binary_search(&node) {
                            s.recv_nodes.insert(at, node);
                        }
                    }
                }
                Event::SpanActive { span, .. } => {
                    if let Some(s) = spans.get_mut(&span) {
                        s.active_ns = Some(s.active_ns.map_or(te.ts_ns, |a| a.min(te.ts_ns)));
                    }
                }
                Event::SpanClose { span } => {
                    if let Some(s) = spans.get_mut(&span) {
                        s.close_ns = Some(s.close_ns.map_or(te.ts_ns, |c| c.max(te.ts_ns)));
                    }
                }
                Event::TaskComputed { task, .. } => {
                    if let Some(&span) = by_task.get(&task) {
                        if let Some(s) = spans.get_mut(&span) {
                            s.computed_ns =
                                Some(s.computed_ns.map_or(te.ts_ns, |c| c.max(te.ts_ns)));
                        }
                    }
                }
                _ => {}
            }
        }
        let edges: Vec<(u64, u64)> = spans
            .values()
            .filter(|s| s.parent != 0)
            .map(|s| (s.parent, s.span))
            .collect();
        for (parent, child) in edges {
            if let Some(p) = spans.get_mut(&parent) {
                p.children.push(child); // BTreeMap scan order => ascending
            }
        }
        SpanDag { spans }
    }

    /// A span by id.
    pub fn span(&self, id: u64) -> Option<&SpanInfo> {
        self.spans.get(&id)
    }

    /// Every span, ascending by id.
    pub fn spans(&self) -> impl Iterator<Item = &SpanInfo> {
        self.spans.values()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The root (job) span that closed last, if any closed at all.
    pub fn last_finished_root(&self) -> Option<&SpanInfo> {
        self.spans
            .values()
            .filter(|s| s.kind == SpanKind::Job && s.close_ns.is_some())
            .max_by_key(|s| (s.close_ns, s.span))
    }

    /// All spans of `trace`, ascending by id.
    pub fn trace_spans(&self, trace: u64) -> impl Iterator<Item = &SpanInfo> {
        self.spans.values().filter(move |s| s.trace == trace)
    }
}

/// One critical-path segment: a contiguous time slice attributed to a span
/// and a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The span the slice belongs to.
    pub span: u64,
    /// That span's kind.
    pub kind: SpanKind,
    /// That span's subject id.
    pub subject: u64,
    /// The phase charged for the slice.
    pub phase: Phase,
    /// Slice start (ns since recorder start).
    pub start_ns: u64,
    /// Slice end (exclusive).
    pub end_ns: u64,
}

impl Segment {
    /// Slice length.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Exact summary of one span kind's closed-span durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindSummary {
    /// Closed spans of this kind in the trace.
    pub count: u64,
    /// Mean duration (ns).
    pub mean_ns: u64,
    /// Exact median duration (ns).
    pub p50_ns: u64,
    /// Exact 95th-percentile duration (ns).
    pub p95_ns: u64,
}

/// The analysis result for the slowest-finishing job of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The analyzed trace (its root job span id).
    pub trace: u64,
    /// The root job span.
    pub root_span: u64,
    /// The root job's subject id.
    pub job: u64,
    /// Root close − root open: the wall clock the phases decompose.
    pub wall_ns: u64,
    /// The critical path, in time order; segment boundaries telescope, so
    /// the durations sum to exactly `wall_ns`.
    pub critical_path: Vec<Segment>,
    /// Total ns per phase over the critical path, in [`PHASES`] order.
    pub phase_totals_ns: [u64; 5],
    /// Per-kind latency summaries over the trace's closed spans, in
    /// [`SpanKind`] declaration order (job, plan, column, subtree).
    pub kind_summaries: [KindSummary; 5],
    /// Spans reconstructed for this trace.
    pub spans_total: u64,
}

/// Appends phase slices of `span` covering exactly `[lo, hi)` to `out`.
/// Marks outside the window are clamped; missing marks collapse their
/// segment to zero length (and are skipped).
fn decompose(span: &SpanInfo, lo: u64, hi: u64, out: &mut Vec<Segment>) {
    if hi <= lo {
        return;
    }
    let phases: &[(Option<u64>, Phase)] = match span.kind {
        // A job's own (non-child) time is master bookkeeping.
        SpanKind::Job => &[(Some(u64::MAX), Phase::Scheduling)],
        // enqueue -> popped for assignment = queue wait; popped -> closed
        // (dispatch sends done) = outbound network.
        SpanKind::Plan => &[
            (span.active_ns, Phase::Scheduling),
            (Some(u64::MAX), Phase::Network),
        ],
        SpanKind::ColumnTask => &[
            (span.recv_ns, Phase::Network),
            (span.active_ns, Phase::Queueing),
            (span.computed_ns, Phase::Compute),
            (Some(u64::MAX), Phase::Network),
        ],
        // recv -> active covers the ReqCols/ReqIx dataset assembly.
        SpanKind::SubtreeTask => &[
            (span.recv_ns, Phase::Network),
            (span.active_ns, Phase::Gather),
            (span.computed_ns, Phase::Compute),
            (Some(u64::MAX), Phase::Network),
        ],
        // admission -> batch dispatch = queueing; dispatch -> response
        // = engine compute (ts-front micro-batch service).
        SpanKind::Request => &[
            (span.active_ns, Phase::Queueing),
            (Some(u64::MAX), Phase::Compute),
        ],
    };
    let mut cursor = lo;
    for &(mark, phase) in phases {
        let bound = match mark {
            Some(m) => m.clamp(cursor, hi),
            None => cursor,
        };
        if bound > cursor {
            out.push(Segment {
                span: span.span,
                kind: span.kind,
                subject: span.subject,
                phase,
                start_ns: cursor,
                end_ns: bound,
            });
            cursor = bound;
        }
    }
    if cursor < hi {
        // Trailing slack (all marks short of `hi`): charge the span's
        // final phase so coverage stays exact.
        let phase = phases.last().expect("every kind has phases").1;
        match out.last_mut() {
            Some(seg) if seg.span == span.span && seg.phase == phase && seg.end_ns == cursor => {
                seg.end_ns = hi;
            }
            _ => out.push(Segment {
                span: span.span,
                kind: span.kind,
                subject: span.subject,
                phase,
                start_ns: cursor,
                end_ns: hi,
            }),
        }
    }
}

impl TraceReport {
    /// Builds the report for the slowest-finishing job in `dag`. `None`
    /// when no job span closed.
    pub fn build(dag: &SpanDag) -> Option<TraceReport> {
        let root = dag.last_finished_root()?;
        let root_close = root.close_ns.expect("root is closed");

        // Latest-closing strict descendant of the root (the root itself
        // always closes last, so it can't anchor the walk); when nothing
        // below it closed, the root is its own anchor.
        let mut deepest: Option<&SpanInfo> = None;
        let mut stack: Vec<u64> = root.children.clone();
        let mut visited: std::collections::BTreeSet<u64> = [root.span].into();
        while let Some(id) = stack.pop() {
            if !visited.insert(id) {
                continue;
            }
            let Some(s) = dag.span(id) else { continue };
            if let Some(close) = s.close_ns {
                let close = close.min(root_close);
                let beats = deepest.is_none_or(|d| {
                    (close, s.span) > (d.close_ns.expect("closed").min(root_close), d.span)
                });
                if beats {
                    deepest = Some(s);
                }
            }
            stack.extend(&s.children);
        }
        let deepest = deepest.unwrap_or(root);

        // Parent chain root -> ... -> deepest.
        let mut chain: Vec<&SpanInfo> = Vec::new();
        let mut cur = deepest;
        loop {
            chain.push(cur);
            if cur.span == root.span {
                break;
            }
            match dag.span(cur.parent) {
                Some(p) if !chain.iter().any(|c| c.span == p.span) => cur = p,
                // Broken chain (lost events): degrade to root-only.
                _ => {
                    chain.clear();
                    chain.push(root);
                    break;
                }
            }
        }
        chain.reverse();
        let deepest = *chain.last().expect("chain is non-empty");

        // Decompose: each chain span owns [its open, next span's open);
        // the deepest owns its full interval; the root absorbs the
        // fold-in tail [deepest close, root close). Boundaries are forced
        // monotone, so the segments tile [root open, root close) exactly.
        let mut path = Vec::new();
        let mut cursor = root.open_ns;
        for w in chain.windows(2) {
            let next_open = w[1].open_ns.clamp(cursor, root_close);
            decompose(w[0], cursor, next_open, &mut path);
            cursor = next_open;
        }
        let deep_close = deepest
            .close_ns
            .unwrap_or(root_close)
            .clamp(cursor, root_close);
        decompose(deepest, cursor, deep_close, &mut path);
        if deep_close < root_close {
            decompose(root, deep_close, root_close, &mut path);
        }

        let mut phase_totals_ns = [0u64; 5];
        for seg in &path {
            let at = PHASES
                .iter()
                .position(|p| *p == seg.phase)
                .expect("phase is listed");
            phase_totals_ns[at] += seg.dur_ns();
        }

        let kinds = [
            SpanKind::Job,
            SpanKind::Plan,
            SpanKind::ColumnTask,
            SpanKind::SubtreeTask,
            SpanKind::Request,
        ];
        let mut kind_summaries = [KindSummary::default(); 5];
        for (at, kind) in kinds.iter().enumerate() {
            let mut durs: Vec<u64> = dag
                .trace_spans(root.trace)
                .filter(|s| s.kind == *kind)
                .filter_map(|s| s.duration_ns())
                .collect();
            durs.sort_unstable();
            if durs.is_empty() {
                continue;
            }
            let exact = |q: f64| {
                let idx = ((q * (durs.len() - 1) as f64).round() as usize).min(durs.len() - 1);
                durs[idx]
            };
            kind_summaries[at] = KindSummary {
                count: durs.len() as u64,
                mean_ns: durs.iter().sum::<u64>() / durs.len() as u64,
                p50_ns: exact(0.5),
                p95_ns: exact(0.95),
            };
        }

        Some(TraceReport {
            trace: root.trace,
            root_span: root.span,
            job: root.subject,
            wall_ns: root_close - root.open_ns,
            critical_path: path,
            phase_totals_ns,
            kind_summaries,
            spans_total: dag.trace_spans(root.trace).count() as u64,
        })
    }

    /// [`SpanDag::from_events`] + [`TraceReport::build`] in one call.
    pub fn from_events(events: &[TimedEvent]) -> Option<TraceReport> {
        TraceReport::build(&SpanDag::from_events(events))
    }

    /// Sum of the phase totals (equals `wall_ns` by construction).
    pub fn phase_sum_ns(&self) -> u64 {
        self.phase_totals_ns.iter().sum()
    }

    /// Total ns charged to `phase` on the critical path.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        let at = PHASES
            .iter()
            .position(|p| *p == phase)
            .expect("phase is listed");
        self.phase_totals_ns[at]
    }

    /// The report as a JSON object string (deterministic field order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"trace\":{},\"root_span\":{},\"job\":{},\"wall_ns\":{},\"spans_total\":{}",
            self.trace, self.root_span, self.job, self.wall_ns, self.spans_total
        );
        s.push_str(",\"phase_totals_ns\":{");
        for (i, phase) in PHASES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", phase.name(), self.phase_totals_ns[i]);
        }
        s.push_str("},\"critical_path\":[");
        for (i, seg) in self.critical_path.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"span\":{},\"kind\":\"{}\",\"subject\":{},\"phase\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                seg.span,
                seg.kind.name(),
                seg.subject,
                seg.phase.name(),
                seg.start_ns,
                seg.end_ns
            );
        }
        s.push_str("],\"span_kind_latency\":{");
        let kinds = [
            SpanKind::Job,
            SpanKind::Plan,
            SpanKind::ColumnTask,
            SpanKind::SubtreeTask,
            SpanKind::Request,
        ];
        for (i, kind) in kinds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let k = &self.kind_summaries[i];
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{}}}",
                kind.name(),
                k.count,
                k.mean_ns,
                k.p50_ns,
                k.p95_ns
            );
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn te(ts_ns: u64, node: u32, event: Event) -> TimedEvent {
        TimedEvent { ts_ns, node, event }
    }

    fn open(
        ts: u64,
        trace: u64,
        span: u64,
        parent: u64,
        kind: SpanKind,
        subject: u64,
    ) -> TimedEvent {
        te(
            ts,
            0,
            Event::SpanOpen {
                trace,
                span,
                parent,
                kind,
                subject,
            },
        )
    }

    /// job(1) -> plan(2) -> column task(3) on worker 2, one level.
    fn small_trace() -> Vec<TimedEvent> {
        vec![
            open(0, 1, 1, 0, SpanKind::Job, 7),
            open(100, 1, 2, 1, SpanKind::Plan, 40),
            te(150, 0, Event::SpanActive { span: 2, node: 0 }),
            open(160, 1, 3, 2, SpanKind::ColumnTask, 40),
            te(200, 0, Event::SpanClose { span: 2 }),
            te(300, 2, Event::SpanRecv { span: 3, node: 2 }),
            te(400, 2, Event::SpanActive { span: 3, node: 2 }),
            te(
                900,
                2,
                Event::TaskComputed {
                    task: 40,
                    node: 2,
                    busy_ns: 500,
                },
            ),
            te(1_000, 0, Event::SpanClose { span: 3 }),
            te(1_200, 0, Event::SpanClose { span: 1 }),
        ]
    }

    #[test]
    fn dag_reconstructs_parents_and_marks() {
        let dag = SpanDag::from_events(&small_trace());
        assert_eq!(dag.len(), 3);
        let task = dag.span(3).unwrap();
        assert_eq!(task.parent, 2);
        assert_eq!(task.kind, SpanKind::ColumnTask);
        assert_eq!(task.recv_ns, Some(300));
        assert_eq!(task.active_ns, Some(400));
        assert_eq!(task.computed_ns, Some(900));
        assert_eq!(task.close_ns, Some(1_000));
        assert_eq!(task.recv_nodes, vec![2]);
        assert_eq!(dag.span(2).unwrap().children, vec![3]);
        assert_eq!(dag.span(1).unwrap().children, vec![2]);
        assert_eq!(dag.last_finished_root().unwrap().span, 1);
    }

    #[test]
    fn critical_path_phases_tile_the_wall_clock() {
        let report = TraceReport::from_events(&small_trace()).expect("job closed");
        assert_eq!(report.trace, 1);
        assert_eq!(report.job, 7);
        assert_eq!(report.wall_ns, 1_200);
        assert!(!report.critical_path.is_empty());
        // Exact tiling: contiguous, ordered, summing to the wall clock.
        assert_eq!(report.phase_sum_ns(), report.wall_ns);
        assert_eq!(report.critical_path.first().unwrap().start_ns, 0);
        assert_eq!(report.critical_path.last().unwrap().end_ns, 1_200);
        for w in report.critical_path.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "segments must be contiguous");
        }
        // job [0,100) scheduling; plan [100,150) scheduling, [150,160)
        // network; task [160,300) network, [300,400) queueing, [400,900)
        // compute, [900,1000) network; fold tail [1000,1200) scheduling.
        assert_eq!(report.phase_ns(Phase::Scheduling), 100 + 50 + 200);
        assert_eq!(report.phase_ns(Phase::Network), 10 + 140 + 100);
        assert_eq!(report.phase_ns(Phase::Queueing), 100);
        assert_eq!(report.phase_ns(Phase::Compute), 500);
        assert_eq!(report.phase_ns(Phase::Gather), 0);
    }

    #[test]
    fn report_json_is_wellformed_and_deterministic() {
        let a = TraceReport::from_events(&small_trace()).unwrap().to_json();
        let b = TraceReport::from_events(&small_trace()).unwrap().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'), "{a}");
        assert!(a.contains("\"phase_totals_ns\""), "{a}");
        assert!(a.contains("\"critical_path\""), "{a}");
        assert!(a.contains("\"kind\":\"column_task\""), "{a}");
    }

    #[test]
    fn unclosed_job_yields_no_report() {
        let events = vec![open(0, 1, 1, 0, SpanKind::Job, 0)];
        assert!(TraceReport::from_events(&events).is_none());
        let dag = SpanDag::from_events(&events);
        assert!(dag.last_finished_root().is_none());
    }

    #[test]
    fn missing_marks_degrade_gracefully() {
        // A task span with no recv/active/computed marks (crashed worker):
        // its whole interval is charged to network, and the totals still
        // tile the wall clock.
        let events = vec![
            open(0, 1, 1, 0, SpanKind::Job, 0),
            open(10, 1, 2, 1, SpanKind::Plan, 5),
            open(20, 1, 3, 2, SpanKind::SubtreeTask, 5),
            te(500, 0, Event::SpanClose { span: 3 }),
            te(600, 0, Event::SpanClose { span: 1 }),
        ];
        let report = TraceReport::from_events(&events).unwrap();
        assert_eq!(report.phase_sum_ns(), report.wall_ns);
        assert_eq!(report.wall_ns, 600);
        // Plan [10,20) with no active mark + task [20,500) with no marks
        // both fall through to their final (network) phase.
        assert_eq!(report.phase_ns(Phase::Network), 10 + 480);
    }

    #[test]
    fn deepest_descendant_wins_over_shallow_late_closer() {
        // Two plans; the second's task closes latest and must anchor the
        // path even though the first plan closes after the second opens.
        let events = vec![
            open(0, 1, 1, 0, SpanKind::Job, 0),
            open(10, 1, 2, 1, SpanKind::Plan, 5),
            te(40, 0, Event::SpanClose { span: 2 }),
            open(50, 1, 4, 1, SpanKind::Plan, 6),
            open(60, 1, 5, 4, SpanKind::ColumnTask, 6),
            te(70, 1, Event::SpanRecv { span: 5, node: 1 }),
            te(300, 0, Event::SpanClose { span: 5 }),
            te(400, 0, Event::SpanClose { span: 4 }),
            te(500, 0, Event::SpanClose { span: 1 }),
        ];
        let report = TraceReport::from_events(&events).unwrap();
        // Chain is job -> plan(4): plan 4 closes at 400, after task 5.
        let on_path: Vec<u64> = report.critical_path.iter().map(|s| s.span).collect();
        assert!(on_path.contains(&4), "{on_path:?}");
        assert_eq!(report.phase_sum_ns(), report.wall_ns);
    }
}
