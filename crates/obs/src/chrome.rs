//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! Mapping:
//!
//! - paired lifecycle events become complete spans (`"ph":"X"`): a
//!   `ColumnTaskDispatched`/`ColumnTaskCompleted` pair is a `column_task`
//!   span on the worker's process track, `SubtreeTaskDelegated`/
//!   `SubtreeTaskBuilt` a `subtree_task` span, `JobSubmitted`/`JobFinished`
//!   a `job` span on the master's track;
//! - `TaskComputed` becomes a retroactive `compute` span (the comper only
//!   knows its busy time once it finishes);
//! - span lifecycle events become *flow* records: a task-kind `SpanOpen`
//!   emits a flow start (`"ph":"s"`) on the master and the matching
//!   `SpanRecv` a flow finish (`"ph":"f"`, `"bp":"e"`) on the receiving
//!   machine, so Perfetto draws the causal arrow of every cross-machine
//!   handoff; a plan span's `SpanOpen`/`SpanClose` pair is a `plan`
//!   complete span on the master's track;
//! - `BplanPush` becomes a `bplan_len` counter sample (`"ph":"C"`);
//! - everything else becomes an instant (`"ph":"i"`);
//! - every process id gets a `process_name` metadata record (`"ph":"M"`).
//!
//! Timestamps are microseconds since recorder start. One pid per simulated
//! machine: pid 0 is the master, pid `n` is worker `n`.

use crate::event::{DequeEnd, Event, TimedEvent};
use crate::json;
use crate::span::SpanKind;
use std::collections::BTreeSet;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

const MASTER_PID: u32 = 0;

fn us(ts_ns: u64) -> String {
    format!("{:.3}", ts_ns as f64 / 1_000.0)
}

struct Emitter {
    out: String,
    first: bool,
    pids: BTreeSet<u32>,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            first: true,
            pids: BTreeSet::new(),
        }
    }

    /// Emits one trace record. `body` is everything after the common
    /// `name`/`ph`/`ts`/`pid` fields (leading comma included by the caller
    /// convention: pass `",..."` or `""`).
    fn emit(&mut self, name: &str, ph: char, ts_ns: u64, pid: u32, body: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.pids.insert(pid);
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{}{}}}",
            json::escape(name),
            ph,
            us(ts_ns),
            pid,
            body,
        );
    }

    fn span(&mut self, name: &str, start_ns: u64, end_ns: u64, pid: u32, tid: u64, args: &str) {
        let dur = end_ns.saturating_sub(start_ns);
        let body = format!(",\"tid\":{},\"dur\":{},\"args\":{{{}}}", tid, us(dur), args);
        self.emit(name, 'X', start_ns, pid, &body);
    }

    fn instant(&mut self, name: &str, ts_ns: u64, pid: u32, args: &str) {
        let body = format!(",\"tid\":0,\"s\":\"p\",\"args\":{{{}}}", args);
        self.emit(name, 'i', ts_ns, pid, &body);
    }

    fn counter(&mut self, name: &str, ts_ns: u64, pid: u32, args: &str) {
        let body = format!(",\"tid\":0,\"args\":{{{}}}", args);
        self.emit(name, 'C', ts_ns, pid, &body);
    }

    /// A flow record (`ph` is `'s'` start or `'f'` finish); `id` ties the
    /// two ends of the arrow together (we use the span id). Finishes bind
    /// to the enclosing slice's end (`"bp":"e"`).
    fn flow(&mut self, ph: char, ts_ns: u64, pid: u32, tid: u64, id: u64) {
        let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
        let body = format!(",\"tid\":{tid},\"cat\":\"span\",\"id\":{id}{bp}");
        self.emit("handoff", ph, ts_ns, pid, &body);
    }

    fn finish(mut self) -> String {
        // Metadata records carry no ts; pid 0 is the master, the rest are
        // the simulated worker machines.
        for pid in self.pids.clone() {
            let name = if pid == MASTER_PID {
                "master".to_string()
            } else {
                format!("worker{pid}")
            };
            let body = format!(",\"args\":{{\"name\":\"{name}\"}}");
            self.emit("process_name", 'M', 0, pid, &body);
        }
        self.out.push_str("]}");
        self.out
    }
}

/// Renders `events` (any order) as a Chrome trace-event JSON document.
pub(crate) fn export(mut events: Vec<TimedEvent>) -> String {
    events.sort_by_key(|e| e.ts_ns);
    let mut e = Emitter::new();

    // Open ends of not-yet-paired spans, keyed by (kind, id[, node]).
    let mut open_cols: HashMap<(u64, u32), TimedEvent> = HashMap::new();
    let mut open_subs: HashMap<u64, TimedEvent> = HashMap::new();
    let mut open_jobs: HashMap<u64, TimedEvent> = HashMap::new();
    // Plan spans awaiting their close, and span -> subject for flow tids.
    let mut open_plans: HashMap<u64, TimedEvent> = HashMap::new();
    let mut span_subjects: HashMap<u64, u64> = HashMap::new();

    for ev in &events {
        match ev.event {
            Event::SpanOpen {
                span,
                kind,
                subject,
                ..
            } => {
                span_subjects.insert(span, subject);
                match kind {
                    SpanKind::Plan => {
                        open_plans.insert(span, *ev);
                    }
                    // A task span opens at the master and is received on a
                    // worker: the flow start half of the causal arrow.
                    SpanKind::ColumnTask | SpanKind::SubtreeTask => {
                        e.flow('s', ev.ts_ns, MASTER_PID, subject + 1, span);
                    }
                    // Job spans root the trace; Request spans live entirely
                    // on the front node — neither crosses a machine edge.
                    SpanKind::Job | SpanKind::Request => {}
                }
            }
            Event::SpanRecv { span, node } => {
                let tid = span_subjects.get(&span).copied().unwrap_or(0) + 1;
                e.flow('f', ev.ts_ns, node, tid, span);
            }
            Event::SpanActive { .. } => {}
            Event::SpanClose { span } => {
                if let Some(start) = open_plans.remove(&span) {
                    let subject = match start.event {
                        Event::SpanOpen { subject, .. } => subject,
                        _ => 0,
                    };
                    e.span(
                        "plan",
                        start.ts_ns,
                        ev.ts_ns,
                        MASTER_PID,
                        subject + 1,
                        &format!("\"span\":{span},\"task\":{subject}"),
                    );
                }
            }
            Event::JobSubmitted { job } => {
                open_jobs.insert(job, *ev);
            }
            Event::JobFinished { job } => match open_jobs.remove(&job) {
                Some(start) => e.span(
                    "job",
                    start.ts_ns,
                    ev.ts_ns,
                    MASTER_PID,
                    job + 1,
                    &format!("\"job\":{job}"),
                ),
                None => e.instant(
                    "job_finished",
                    ev.ts_ns,
                    MASTER_PID,
                    &format!("\"job\":{job}"),
                ),
            },
            Event::ColumnTaskDispatched { task, node, .. } => {
                open_cols.insert((task, node), *ev);
            }
            Event::ColumnTaskCompleted {
                task,
                node,
                latency_ns,
            } => match open_cols.remove(&(task, node)) {
                Some(start) => {
                    let (cols, bytes) = match start.event {
                        Event::ColumnTaskDispatched { cols, bytes, .. } => (cols, bytes),
                        _ => (0, 0),
                    };
                    e.span(
                        "column_task",
                        start.ts_ns,
                        ev.ts_ns,
                        node,
                        task + 1,
                        &format!("\"task\":{task},\"cols\":{cols},\"bytes\":{bytes}"),
                    );
                }
                None => e.instant(
                    "column_task_completed",
                    ev.ts_ns,
                    node,
                    &format!("\"task\":{task},\"latency_ns\":{latency_ns}"),
                ),
            },
            Event::SubtreeTaskDelegated { task, .. } => {
                open_subs.insert(task, *ev);
            }
            Event::SubtreeTaskBuilt {
                task,
                node,
                nodes,
                latency_ns,
            } => match open_subs.remove(&task) {
                Some(start) => {
                    let rows = match start.event {
                        Event::SubtreeTaskDelegated { rows, .. } => rows,
                        _ => 0,
                    };
                    e.span(
                        "subtree_task",
                        start.ts_ns,
                        ev.ts_ns,
                        node,
                        task + 1,
                        &format!("\"task\":{task},\"rows\":{rows},\"nodes\":{nodes}"),
                    );
                }
                None => e.instant(
                    "subtree_task_built",
                    ev.ts_ns,
                    node,
                    &format!("\"task\":{task},\"latency_ns\":{latency_ns}"),
                ),
            },
            Event::TaskComputed {
                task,
                node,
                busy_ns,
            } => {
                // The comper records at completion; draw the span backwards.
                e.span(
                    "compute",
                    ev.ts_ns.saturating_sub(busy_ns),
                    ev.ts_ns,
                    node,
                    task + 1,
                    &format!("\"task\":{task}"),
                );
            }
            Event::BplanPush {
                end,
                depth,
                rows,
                qlen,
            } => {
                e.counter(
                    "bplan_len",
                    ev.ts_ns,
                    MASTER_PID,
                    &format!("\"len\":{qlen}"),
                );
                let end = match end {
                    DequeEnd::Head => "head",
                    DequeEnd::Tail => "tail",
                };
                e.instant(
                    "bplan_push",
                    ev.ts_ns,
                    MASTER_PID,
                    &format!("\"end\":\"{end}\",\"depth\":{depth},\"rows\":{rows}"),
                );
            }
            Event::SplitChosen {
                task,
                node,
                attr,
                gain,
            } => e.instant(
                "split_chosen",
                ev.ts_ns,
                node,
                &format!(
                    "\"task\":{task},\"attr\":{attr},\"gain\":{}",
                    json::number(gain)
                ),
            ),
            Event::WorkerCrashed { node } => e.instant(
                "worker_crashed",
                ev.ts_ns,
                node,
                &format!("\"node\":{node}"),
            ),
            Event::WorkerRecovered { node } => e.instant(
                "worker_recovered",
                ev.ts_ns,
                node,
                &format!("\"node\":{node}"),
            ),
            Event::MessageDropped { from, to, seq } => e.instant(
                "message_dropped",
                ev.ts_ns,
                from,
                &format!("\"to\":{to},\"seq\":{seq}"),
            ),
            Event::MessageDelayed {
                from,
                to,
                seq,
                delay_ns,
            } => e.instant(
                "message_delayed",
                ev.ts_ns,
                from,
                &format!("\"to\":{to},\"seq\":{seq},\"delay_ns\":{delay_ns}"),
            ),
            Event::RetrySent {
                from,
                to,
                seq,
                attempt,
                span,
            } => e.instant(
                "retry_sent",
                ev.ts_ns,
                from,
                &format!("\"to\":{to},\"seq\":{seq},\"attempt\":{attempt},\"span\":{span}"),
            ),
            Event::DupDropped {
                node,
                from,
                seq,
                span,
            } => e.instant(
                "dup_dropped",
                ev.ts_ns,
                node,
                &format!("\"from\":{from},\"seq\":{seq},\"span\":{span}"),
            ),
            Event::HeartbeatMissed { worker, missed } => e.instant(
                "heartbeat_missed",
                ev.ts_ns,
                MASTER_PID,
                &format!("\"worker\":{worker},\"missed\":{missed}"),
            ),
            Event::WorkerSuspected { worker } => e.instant(
                "worker_suspected",
                ev.ts_ns,
                MASTER_PID,
                &format!("\"worker\":{worker}"),
            ),
            Event::CrashInjected {
                node,
                at_delegation,
            } => e.instant(
                "crash_injected",
                ev.ts_ns,
                node,
                &format!("\"node\":{node},\"at_delegation\":{at_delegation}"),
            ),
            Event::NetSend { from, to, bytes } => e.instant(
                "net_send",
                ev.ts_ns,
                from,
                &format!("\"to\":{to},\"bytes\":{bytes}"),
            ),
            Event::GbtRound { round } => e.instant(
                "gbt_round",
                ev.ts_ns,
                MASTER_PID,
                &format!("\"round\":{round}"),
            ),
            Event::StealRequested { worker } => e.instant(
                "steal_requested",
                ev.ts_ns,
                worker,
                &format!("\"worker\":{worker}"),
            ),
            Event::PlanStolen {
                task,
                victim,
                thief,
            } => e.instant(
                "plan_stolen",
                ev.ts_ns,
                MASTER_PID,
                &format!("\"task\":{task},\"victim\":{victim},\"thief\":{thief}"),
            ),
            Event::WorkerJoined { node } => {
                e.instant("worker_joined", ev.ts_ns, node, &format!("\"node\":{node}"))
            }
            Event::WorkerDraining { node } => e.instant(
                "worker_draining",
                ev.ts_ns,
                node,
                &format!("\"node\":{node}"),
            ),
            Event::WorkerDeparted { node } => e.instant(
                "worker_departed",
                ev.ts_ns,
                node,
                &format!("\"node\":{node}"),
            ),
            Event::ColumnMigrated { attr, from, to } => e.instant(
                "column_migrated",
                ev.ts_ns,
                to,
                &format!("\"attr\":{attr},\"from\":{from},\"to\":{to}"),
            ),
        }
    }

    // Unpaired opens (job still running at export, or the completion event
    // was lost to ring overwrite) degrade to instants rather than vanish.
    // Sorted maps: the export must be byte-stable for a given event log.
    for (job, ev) in open_jobs.into_iter().collect::<BTreeMap<_, _>>() {
        e.instant(
            "job_submitted",
            ev.ts_ns,
            MASTER_PID,
            &format!("\"job\":{job}"),
        );
    }
    for ((task, node), ev) in open_cols.into_iter().collect::<BTreeMap<_, _>>() {
        e.instant(
            "column_task_dispatched",
            ev.ts_ns,
            node,
            &format!("\"task\":{task}"),
        );
    }
    for (task, ev) in open_subs.into_iter().collect::<BTreeMap<_, _>>() {
        let key_worker = match ev.event {
            Event::SubtreeTaskDelegated { key_worker, .. } => key_worker,
            _ => MASTER_PID,
        };
        e.instant(
            "subtree_task_delegated",
            ev.ts_ns,
            key_worker,
            &format!("\"task\":{task}"),
        );
    }
    for (span, ev) in open_plans.into_iter().collect::<BTreeMap<_, _>>() {
        let subject = match ev.event {
            Event::SpanOpen { subject, .. } => subject,
            _ => 0,
        };
        e.instant(
            "plan_open",
            ev.ts_ns,
            MASTER_PID,
            &format!("\"span\":{span},\"task\":{subject}"),
        );
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(ts_ns: u64, node: u32, event: Event) -> TimedEvent {
        TimedEvent { ts_ns, node, event }
    }

    #[test]
    fn pairs_become_spans() {
        let trace = export(vec![
            te(1_000, 0, Event::JobSubmitted { job: 7 }),
            te(
                2_000,
                0,
                Event::ColumnTaskDispatched {
                    task: 3,
                    node: 1,
                    cols: 4,
                    bytes: 256,
                },
            ),
            te(
                9_000,
                0,
                Event::ColumnTaskCompleted {
                    task: 3,
                    node: 1,
                    latency_ns: 7_000,
                },
            ),
            te(20_000, 0, Event::JobFinished { job: 7 }),
        ]);
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\""), "{trace}");
        assert!(trace.ends_with("]}"), "{trace}");
        assert!(
            trace.contains("\"name\":\"column_task\",\"ph\":\"X\",\"ts\":2.000,\"pid\":1"),
            "{trace}"
        );
        assert!(trace.contains("\"dur\":7.000"), "{trace}");
        assert!(
            trace.contains("\"name\":\"job\",\"ph\":\"X\",\"ts\":1.000,\"pid\":0"),
            "{trace}"
        );
        assert!(
            trace.contains("\"name\":\"process_name\",\"ph\":\"M\""),
            "{trace}"
        );
        assert!(trace.contains("\"name\":\"worker1\""), "{trace}");
    }

    #[test]
    fn unpaired_open_degrades_to_instant() {
        let trace = export(vec![te(
            5_000,
            0,
            Event::ColumnTaskDispatched {
                task: 1,
                node: 2,
                cols: 1,
                bytes: 10,
            },
        )]);
        assert!(
            trace.contains("\"name\":\"column_task_dispatched\",\"ph\":\"i\""),
            "{trace}"
        );
    }

    #[test]
    fn bplan_push_emits_counter_sample() {
        let trace = export(vec![te(
            100,
            0,
            Event::BplanPush {
                end: DequeEnd::Head,
                depth: 3,
                rows: 40,
                qlen: 2,
            },
        )]);
        assert!(
            trace.contains("\"name\":\"bplan_len\",\"ph\":\"C\""),
            "{trace}"
        );
        assert!(trace.contains("\"len\":2"), "{trace}");
        assert!(trace.contains("\"end\":\"head\""), "{trace}");
    }

    #[test]
    fn task_spans_become_flow_arrows() {
        let trace = export(vec![
            te(
                1_000,
                0,
                Event::SpanOpen {
                    trace: 1,
                    span: 9,
                    parent: 4,
                    kind: SpanKind::ColumnTask,
                    subject: 3,
                },
            ),
            te(5_000, 2, Event::SpanRecv { span: 9, node: 2 }),
        ]);
        assert!(
            trace.contains("\"name\":\"handoff\",\"ph\":\"s\",\"ts\":1.000,\"pid\":0,\"tid\":4,\"cat\":\"span\",\"id\":9"),
            "{trace}"
        );
        assert!(
            trace.contains("\"name\":\"handoff\",\"ph\":\"f\",\"ts\":5.000,\"pid\":2,\"tid\":4,\"cat\":\"span\",\"id\":9,\"bp\":\"e\""),
            "{trace}"
        );
    }

    #[test]
    fn plan_spans_pair_into_complete_spans() {
        let trace = export(vec![
            te(
                100,
                0,
                Event::SpanOpen {
                    trace: 1,
                    span: 2,
                    parent: 1,
                    kind: SpanKind::Plan,
                    subject: 7,
                },
            ),
            te(400, 0, Event::SpanActive { span: 2, node: 0 }),
            te(900, 0, Event::SpanClose { span: 2 }),
        ]);
        assert!(
            trace.contains("\"name\":\"plan\",\"ph\":\"X\",\"ts\":0.100,\"pid\":0"),
            "{trace}"
        );
        assert!(trace.contains("\"dur\":0.800"), "{trace}");
        assert!(trace.contains("\"span\":2,\"task\":7"), "{trace}");
    }

    #[test]
    fn unpaired_plan_open_degrades_to_instant() {
        let trace = export(vec![te(
            100,
            0,
            Event::SpanOpen {
                trace: 1,
                span: 2,
                parent: 1,
                kind: SpanKind::Plan,
                subject: 7,
            },
        )]);
        assert!(
            trace.contains("\"name\":\"plan_open\",\"ph\":\"i\""),
            "{trace}"
        );
    }

    #[test]
    fn compute_span_is_drawn_backwards() {
        let trace = export(vec![te(
            10_000,
            2,
            Event::TaskComputed {
                task: 5,
                node: 2,
                busy_ns: 4_000,
            },
        )]);
        assert!(
            trace.contains("\"name\":\"compute\",\"ph\":\"X\",\"ts\":6.000,\"pid\":2"),
            "{trace}"
        );
        assert!(trace.contains("\"dur\":4.000"), "{trace}");
    }
}
