//! Named atomic counters and log-bucketed histograms, snapshotable at any
//! instant while the engine keeps recording.
//!
//! Handles (`Arc<Counter>` / `Arc<Histogram>`) are resolved once — at
//! recorder construction for the engine's hot metrics — so the hot path is
//! a single relaxed atomic add; the registry lock is only taken to register
//! or to snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const N_BUCKETS: usize = 65;

/// A histogram over `u64` values with power-of-two bucket boundaries.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper(i), n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// `(inclusive upper bound, count)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 <= q <= 1`);
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for &(ub, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return ub;
            }
        }
        self.buckets.last().map_or(0, |&(ub, _)| ub)
    }
}

/// A registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn read_map<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_map<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = read_map(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(write_map(&self.counters).entry(name).or_default())
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = read_map(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(write_map(&self.histograms).entry(name).or_default())
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: read_map(&self.counters)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: read_map(&self.histograms)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram's snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Writes the `"counters": {...}, "histograms": {...}` JSON fields
    /// (without surrounding braces) into `out`.
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        out.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", crate::json::escape(name), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"buckets\":[",
                crate::json::escape(name),
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
            for (j, &(ub, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{ub},{n}]");
            }
            out.push_str("]}");
        }
        out.push('}');
    }

    /// The snapshot as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        self.write_json_fields(&mut s);
        s.push('}');
        s
    }

    /// The snapshot in the Prometheus text exposition format: every
    /// counter as a `counter`, every histogram as a `histogram` with
    /// cumulative `_bucket{le="..."}` series (one per non-empty bucket
    /// plus the mandatory `+Inf`), `_sum` and `_count`. Deterministic:
    /// metrics in name order, buckets ascending.
    pub fn to_prometheus_text(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(s, "# TYPE {name} counter");
            let _ = writeln!(s, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(s, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for &(ub, n) in &h.buckets {
                cum += n;
                let _ = writeln!(s, "{name}_bucket{{le=\"{ub}\"}} {cum}");
            }
            let _ = writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(s, "{name}_sum {}", h.sum);
            let _ = writeln!(s, "{name}_count {}", h.count);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1206);
        assert!((s.mean() - 1206.0 / 7.0).abs() < 1e-9);
        // p50 falls in the bucket holding 2..=3 (cumulative 4 of 7).
        assert_eq!(s.quantile(0.5), 3);
        // p99 falls in the last bucket (512..=1023).
        assert_eq!(s.quantile(0.99), 1023);
        assert_eq!(s.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(r.snapshot().counter("x"), 1);
        assert_eq!(r.snapshot().counter("never"), 0);
    }

    #[test]
    fn prometheus_text_round_trips_the_snapshot() {
        let r = MetricsRegistry::new();
        r.counter("jobs_done").add(3);
        let h = r.histogram("latency_ns");
        for v in [0u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let text = snap.to_prometheus_text();

        // Shape: TYPE lines, cumulative buckets ending in +Inf, sum/count.
        assert!(
            text.contains("# TYPE jobs_done counter\njobs_done 3\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("latency_ns_sum 106"), "{text}");
        assert!(text.contains("latency_ns_count 5"), "{text}");

        // Round trip: parse the text back and recover every value.
        let mut counters = BTreeMap::new();
        let mut series: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (key, val) = line.rsplit_once(' ').expect("sample line");
            let val: u64 = val.parse().expect("integer sample");
            match key.split_once('{') {
                Some((name, labels)) => series
                    .entry(name.to_string())
                    .or_default()
                    .push((labels.trim_end_matches('}').to_string(), val)),
                None => {
                    counters.insert(key.to_string(), val);
                }
            }
        }
        assert_eq!(counters.get("jobs_done"), Some(&3));
        assert_eq!(
            counters.get("latency_ns_sum"),
            Some(&snap.histogram("latency_ns").unwrap().sum)
        );
        assert_eq!(counters.get("latency_ns_count"), Some(&5));
        let buckets = &series["latency_ns_bucket"];
        // Cumulative counts de-cumulate back to the snapshot's buckets.
        let snap_h = snap.histogram("latency_ns").unwrap();
        let mut prev = 0u64;
        for (i, &(ub, n)) in snap_h.buckets.iter().enumerate() {
            let (le, cum) = &buckets[i];
            assert_eq!(le, &format!("le=\"{ub}\""));
            assert_eq!(cum - prev, n);
            prev = *cum;
        }
        assert_eq!(buckets.last().unwrap(), &("le=\"+Inf\"".to_string(), 5));
    }

    #[test]
    fn snapshot_json_shape() {
        let r = MetricsRegistry::new();
        r.counter("a").add(2);
        r.histogram("h").observe(5);
        let j = r.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"a\":2"), "{j}");
        assert!(j.contains("\"count\":1"), "{j}");
        assert!(j.contains("\"buckets\":[[7,1]]"), "{j}");
    }
}
