//! The task-lifecycle event taxonomy.
//!
//! Every variant is `Copy` and contains only scalars: records are written
//! into the lock-free ring with a plain memory copy and read back with a
//! seqlock validation, so they must be trivially movable and must not own
//! heap data. Identifiers are the engine's `TaskId.0` / `TreeId.0` / job
//! counters widened or narrowed to plain integers.

/// Which end of the `Bplan` deque a plan was pushed to (paper §III: head =
/// depth-first, tail = breadth-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeEnd {
    /// `push_front` — the task's `|Dx| <= τ_dfs`.
    Head,
    /// `push_back` — breadth-first.
    Tail,
}

use crate::span::SpanKind;

/// One task-lifecycle event. See `docs/OBSERVABILITY.md` for the taxonomy
/// and how each variant maps onto the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A span was allocated at the master. `parent == 0` marks a trace
    /// root (a job span, whose id doubles as the trace id).
    SpanOpen {
        /// The trace (root job span id) this span belongs to.
        trace: u64,
        /// The new span's id.
        span: u64,
        /// The causally-parenting span (0 for trace roots).
        parent: u64,
        /// What work the span covers.
        kind: SpanKind,
        /// The engine id of the subject: the job id for jobs, `TaskId.0`
        /// for plans and tasks.
        subject: u64,
    },
    /// A machine received the frame that carries this span's work — the
    /// cross-machine handoff edge of the DAG.
    SpanRecv {
        /// The span.
        span: u64,
        /// The receiving machine.
        node: u32,
    },
    /// Work on the span left its queue and started executing (a comper
    /// picked the task up; the master popped the plan for assignment).
    SpanActive {
        /// The span.
        span: u64,
        /// The executing machine.
        node: u32,
    },
    /// The span's work is complete and folded at the master.
    SpanClose {
        /// The span.
        span: u64,
    },
    /// A job entered the master's registry.
    JobSubmitted {
        /// The job id (`JobHandle.0`).
        job: u64,
    },
    /// The job's last tree landed and the client was notified.
    JobFinished {
        /// The job id.
        job: u64,
    },
    /// A column-task shard was shipped to a worker (one event per shard).
    ColumnTaskDispatched {
        /// The task id.
        task: u64,
        /// The worker the shard goes to.
        node: u32,
        /// Number of columns in the shard.
        cols: u32,
        /// Wire bytes of the plan message.
        bytes: u64,
    },
    /// A column-task shard result arrived back at the master.
    ColumnTaskCompleted {
        /// The task id.
        task: u64,
        /// The reporting worker.
        node: u32,
        /// Master-side dispatch-to-result latency.
        latency_ns: u64,
    },
    /// A subtree-task was delegated to its key worker.
    SubtreeTaskDelegated {
        /// The task id.
        task: u64,
        /// The chosen key worker.
        key_worker: u32,
        /// `|Dx|` at handoff.
        rows: u64,
    },
    /// A completed subtree arrived back at the master.
    SubtreeTaskBuilt {
        /// The task id.
        task: u64,
        /// The key worker that built it.
        node: u32,
        /// Node count of the returned subtree.
        nodes: u32,
        /// Master-side delegation-to-result latency.
        latency_ns: u64,
    },
    /// A plan entered `Bplan` (head = DFS, tail = BFS, Fig. 5).
    BplanPush {
        /// Which end of the deque.
        end: DequeEnd,
        /// Node depth of the pushed plan.
        depth: u32,
        /// `|Dx|` of the pushed plan.
        rows: u64,
        /// Deque length right after the push.
        qlen: u32,
    },
    /// The master confirmed a task's overall best split.
    SplitChosen {
        /// The task id.
        task: u64,
        /// The winning (delegate) worker.
        node: u32,
        /// The winning attribute.
        attr: u32,
        /// The winning split's gain.
        gain: f64,
    },
    /// A comper finished the compute phase of a task (column or subtree).
    TaskComputed {
        /// The task id.
        task: u64,
        /// The computing worker.
        node: u32,
        /// Busy time of the computation.
        busy_ns: u64,
    },
    /// A worker was declared dead (fault injection / send failure).
    WorkerCrashed {
        /// The dead worker.
        node: u32,
    },
    /// A re-replication target finished loading a crashed worker's columns.
    WorkerRecovered {
        /// The worker now holding the columns.
        node: u32,
    },
    /// A fault plan dropped a message in transit (the receiver never sees
    /// it). Replayable: the same plan seed drops the same `(from, to, seq)`.
    MessageDropped {
        /// Sender machine.
        from: u32,
        /// Intended receiver.
        to: u32,
        /// The message's sequence number on the `(from, to)` edge.
        seq: u64,
    },
    /// A fault plan delayed a message before delivery.
    MessageDelayed {
        /// Sender machine.
        from: u32,
        /// Receiver machine.
        to: u32,
        /// The message's sequence number on the `(from, to)` edge.
        seq: u64,
        /// The injected extra delay.
        delay_ns: u64,
    },
    /// The reliable fabric retransmitted an unacknowledged frame.
    RetrySent {
        /// Sender machine.
        from: u32,
        /// Receiver machine.
        to: u32,
        /// The frame's reliable sequence number on the `(from, to)` edge.
        seq: u64,
        /// Retransmission attempt (1 = first retry).
        attempt: u32,
        /// The span of the payload being retransmitted (0 for spanless
        /// frames); a retry stays attributed to the originating span.
        span: u64,
    },
    /// A receiver discarded a reliable frame it had already delivered (a
    /// retransmit whose original made it through, or an injected duplicate).
    DupDropped {
        /// The deduplicating receiver.
        node: u32,
        /// The frame's sender.
        from: u32,
        /// The frame's reliable sequence number on the `(from, node)` edge.
        seq: u64,
        /// The span of the discarded payload (0 for spanless frames).
        span: u64,
    },
    /// The master's lease detector noticed a worker heartbeat overdue by at
    /// least one more interval.
    HeartbeatMissed {
        /// The silent worker.
        worker: u32,
        /// Consecutive intervals without a heartbeat so far.
        missed: u64,
    },
    /// A worker exhausted its heartbeat lease; the master declares it dead
    /// and starts crash recovery.
    WorkerSuspected {
        /// The suspected worker.
        worker: u32,
    },
    /// A fault plan triggered a worker crash (followed by the engine's
    /// `WorkerCrashed` / recovery events).
    CrashInjected {
        /// The worker being killed.
        node: u32,
        /// The global subtree-delegation count at which the plan fired.
        at_delegation: u64,
    },
    /// A sampled fabric send (one event per `net_sample_every` sends).
    NetSend {
        /// Sender machine.
        from: u32,
        /// Receiver machine.
        to: u32,
        /// Payload bytes of this message.
        bytes: u64,
    },
    /// A boosting round started (client-side, see `treeserver::gbt`).
    GbtRound {
        /// The round index.
        round: u32,
    },
    /// A worker's ready queue ran dry and it asked the scheduler to steal
    /// on its behalf (`ts-sched` stealing mode, see `docs/SCHEDULING.md`).
    StealRequested {
        /// The idle worker.
        worker: u32,
    },
    /// The scheduler stole a queued plan from `victim`'s affinity deque
    /// and dispatched it on `thief`'s behalf.
    PlanStolen {
        /// The stolen task (`TaskId.0`).
        task: u64,
        /// The worker whose deque lost the plan.
        victim: u32,
        /// The idle worker that requested the steal.
        thief: u32,
    },
    /// A worker's `Hello` handshake was accepted: it is now in the roster,
    /// its heartbeat lease is armed, and its column migration is under way
    /// (`ts-elastic` membership, see `docs/ELASTICITY.md`).
    WorkerJoined {
        /// The joining worker.
        node: u32,
    },
    /// The master told a worker to drain ahead of a scripted preemption:
    /// no new plans flow to it, its queued plans were reclaimed, and its
    /// columns are being handed off within the grace window.
    WorkerDraining {
        /// The draining worker.
        node: u32,
    },
    /// A draining worker finished handing off and was retired gracefully —
    /// its `Goodbye` cleared the lease without invoking crash recovery.
    WorkerDeparted {
        /// The departed worker.
        node: u32,
    },
    /// One column finished migrating between holders as part of a join
    /// top-up or a pre-departure handoff (not crash re-replication).
    ColumnMigrated {
        /// The migrated attribute.
        attr: u32,
        /// The holder that served the copy.
        from: u32,
        /// The new holder.
        to: u32,
    },
}

/// An [`Event`] stamped with its monotonic record time and the machine whose
/// ring it was written to (the *observing* machine; subject machines are in
/// the event fields).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// The ring (machine) the event was recorded on.
    pub node: u32,
    /// The event.
    pub event: Event,
}
