//! Minimal JSON string escaping for the hand-rolled exporters.

/// Escapes a string for inclusion between JSON double quotes.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-valid number (JSON has no NaN/Infinity).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_are_json_valid() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }
}
