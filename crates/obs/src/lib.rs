//! `ts-obs` — task-lifecycle tracing, metrics and Chrome-trace export for
//! the simulated TreeServer cluster.
//!
//! The crate is deliberately dependency-free (std only). The engine records
//! typed [`Event`]s into per-machine lock-free rings via a shared
//! [`Recorder`]; a [`MetricsRegistry`] of atomic counters and log-bucketed
//! histograms is updated inline from the same events. Both are snapshotable
//! at any instant, and exportable as a Chrome trace-event JSON document
//! (Perfetto-loadable) and a JSON metrics dump. See `docs/OBSERVABILITY.md`.
//!
//! Cost model: when the `obs` feature is off in `treeserver`, the
//! `obs_event!` call sites expand to nothing. When compiled in but runtime
//! disabled (`ObsConfig::enabled == false`), the engine never constructs a
//! `Recorder`, so the per-event cost is one `OnceLock` load and a `None`
//! branch. When enabled, a record is a monotonic-clock read, a handful of
//! relaxed atomic ops on pre-resolved metric handles, and one lock-free
//! ring push.

mod chrome;
mod event;
mod json;
mod metrics;
mod ring;
mod span;
pub mod trace;

pub use event::{DequeEnd, Event, TimedEvent};
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, N_BUCKETS,
};
pub use span::{KindLatency, LatencyFeed, LatencyFeedSnapshot, SpanId, SpanKind, TraceCtx};
pub use trace::{Phase, Segment, SpanDag, SpanInfo, TraceReport};

use ring::Ring;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Runtime observability configuration, carried in `ClusterConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch: when false the cluster never builds a [`Recorder`]
    /// and every record call is a load-and-branch.
    pub enabled: bool,
    /// Per-machine event-ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Record one `NetSend` ring event per this many fabric sends *per
    /// directed edge* — the first send on an edge is always recorded, so
    /// flow arrows in the Chrome trace never orphan (the `net_sends`
    /// counter and `net_send_bytes` histogram still see every send).
    /// 0 disables per-send ring events entirely.
    pub net_sample_every: u64,
    /// When true, the master logs the [`LatencyFeed`] snapshot (rolling
    /// p50/p95 of column-/subtree-task span durations) to stderr when a
    /// job finishes. The feed itself is always maintained.
    pub log_latency_feed: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 1 << 16,
            net_sample_every: 64,
            log_latency_feed: false,
        }
    }
}

impl ObsConfig {
    /// A config with recording switched on and default sizing.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }
}

/// Pre-resolved handles for the engine's hot metrics, so recording never
/// takes the registry lock.
struct Hot {
    jobs_submitted: Arc<Counter>,
    jobs_finished: Arc<Counter>,
    column_tasks_dispatched: Arc<Counter>,
    column_tasks_completed: Arc<Counter>,
    subtree_tasks_delegated: Arc<Counter>,
    subtree_tasks_built: Arc<Counter>,
    bplan_push_head: Arc<Counter>,
    bplan_push_tail: Arc<Counter>,
    splits_chosen: Arc<Counter>,
    workers_crashed: Arc<Counter>,
    workers_recovered: Arc<Counter>,
    messages_dropped: Arc<Counter>,
    messages_delayed: Arc<Counter>,
    retries_sent: Arc<Counter>,
    dups_dropped: Arc<Counter>,
    heartbeats_missed: Arc<Counter>,
    workers_suspected: Arc<Counter>,
    crashes_injected: Arc<Counter>,
    net_sends: Arc<Counter>,
    gbt_rounds: Arc<Counter>,
    steals_requested: Arc<Counter>,
    plans_stolen: Arc<Counter>,
    workers_joined: Arc<Counter>,
    workers_draining: Arc<Counter>,
    workers_departed: Arc<Counter>,
    columns_migrated: Arc<Counter>,
    spans_opened: Arc<Counter>,
    spans_closed: Arc<Counter>,
    column_task_latency_ns: Arc<Histogram>,
    subtree_task_latency_ns: Arc<Histogram>,
    subtree_handoff_rows: Arc<Histogram>,
    bplan_depth: Arc<Histogram>,
    net_send_bytes: Arc<Histogram>,
    comper_busy_ns: Arc<Histogram>,
}

impl Hot {
    fn new(reg: &MetricsRegistry) -> Hot {
        Hot {
            jobs_submitted: reg.counter("jobs_submitted"),
            jobs_finished: reg.counter("jobs_finished"),
            column_tasks_dispatched: reg.counter("column_tasks_dispatched"),
            column_tasks_completed: reg.counter("column_tasks_completed"),
            subtree_tasks_delegated: reg.counter("subtree_tasks_delegated"),
            subtree_tasks_built: reg.counter("subtree_tasks_built"),
            bplan_push_head: reg.counter("bplan_push_head"),
            bplan_push_tail: reg.counter("bplan_push_tail"),
            splits_chosen: reg.counter("splits_chosen"),
            workers_crashed: reg.counter("workers_crashed"),
            workers_recovered: reg.counter("workers_recovered"),
            messages_dropped: reg.counter("messages_dropped"),
            messages_delayed: reg.counter("messages_delayed"),
            retries_sent: reg.counter("retries_sent"),
            dups_dropped: reg.counter("dups_dropped"),
            heartbeats_missed: reg.counter("heartbeats_missed"),
            workers_suspected: reg.counter("workers_suspected"),
            crashes_injected: reg.counter("crashes_injected"),
            net_sends: reg.counter("net_sends"),
            gbt_rounds: reg.counter("gbt_rounds"),
            steals_requested: reg.counter("steals_requested"),
            plans_stolen: reg.counter("plans_stolen"),
            workers_joined: reg.counter("workers_joined"),
            workers_draining: reg.counter("workers_draining"),
            workers_departed: reg.counter("workers_departed"),
            columns_migrated: reg.counter("columns_migrated"),
            spans_opened: reg.counter("spans_opened"),
            spans_closed: reg.counter("spans_closed"),
            column_task_latency_ns: reg.histogram("column_task_latency_ns"),
            subtree_task_latency_ns: reg.histogram("subtree_task_latency_ns"),
            subtree_handoff_rows: reg.histogram("subtree_handoff_rows"),
            bplan_depth: reg.histogram("bplan_depth"),
            net_send_bytes: reg.histogram("net_send_bytes"),
            comper_busy_ns: reg.histogram("comper_busy_ns"),
        }
    }
}

/// The cluster-wide event recorder: one ring per simulated machine plus a
/// shared metrics registry. Cheap to share (`Arc`) and safe to record into
/// from every engine thread concurrently.
pub struct Recorder {
    start: Instant,
    /// When set, `now_ns` reads this counter instead of the wall clock —
    /// the simulation's virtual time source (`ts_netsim::SimClock`).
    time_source: Option<Arc<AtomicU64>>,
    rings: Vec<Ring>,
    registry: MetricsRegistry,
    hot: Hot,
    /// One send counter per directed edge (`from * n + to`), plus a
    /// trailing fallback slot for out-of-range endpoints, so the first
    /// send on every edge lands a ring event (sampling is per edge).
    net_seq: Vec<AtomicU64>,
    net_sample_every: u64,
    feed: LatencyFeed,
    log_latency_feed: bool,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("nodes", &self.rings.len())
            .field("events_total", &self.events_total())
            .field("events_lost", &self.events_lost())
            .finish()
    }
}

impl Recorder {
    /// Creates a recorder for `n_nodes` machines (machine 0 is the master).
    pub fn new(n_nodes: usize, cfg: &ObsConfig) -> Recorder {
        let registry = MetricsRegistry::new();
        let hot = Hot::new(&registry);
        let n = n_nodes.max(1);
        Recorder {
            start: Instant::now(),
            time_source: None,
            rings: (0..n).map(|_| Ring::new(cfg.ring_capacity)).collect(),
            registry,
            hot,
            net_seq: (0..n * n + 1).map(|_| AtomicU64::new(0)).collect(),
            net_sample_every: cfg.net_sample_every,
            feed: LatencyFeed::default(),
            log_latency_feed: cfg.log_latency_feed,
        }
    }

    /// A recorder stamping events from a shared virtual-nanosecond counter
    /// instead of the wall clock. With a single recording thread this makes
    /// the event timeline a pure function of the recorded sequence.
    pub fn with_time_source(n_nodes: usize, cfg: &ObsConfig, source: Arc<AtomicU64>) -> Recorder {
        let mut rec = Recorder::new(n_nodes, cfg);
        rec.time_source = Some(source);
        rec
    }

    /// Nanoseconds since the recorder was created (or the virtual time
    /// source's current value).
    pub fn now_ns(&self) -> u64 {
        match &self.time_source {
            Some(src) => src.load(Ordering::Relaxed),
            None => self.start.elapsed().as_nanos() as u64,
        }
    }

    /// Records `event` on machine `node`'s ring and folds it into the
    /// metrics registry.
    pub fn record(&self, node: u32, event: Event) {
        self.observe_metrics(&event);
        self.push(node, event);
    }

    fn push(&self, node: u32, event: Event) {
        let ring = self.rings.get(node as usize).unwrap_or(&self.rings[0]);
        ring.push(TimedEvent {
            ts_ns: self.now_ns(),
            node,
            event,
        });
    }

    fn observe_metrics(&self, event: &Event) {
        let h = &self.hot;
        match *event {
            Event::SpanOpen { .. } => h.spans_opened.inc(),
            Event::SpanClose { .. } => h.spans_closed.inc(),
            Event::SpanRecv { .. } | Event::SpanActive { .. } => {}
            Event::JobSubmitted { .. } => h.jobs_submitted.inc(),
            Event::JobFinished { .. } => h.jobs_finished.inc(),
            Event::ColumnTaskDispatched { .. } => h.column_tasks_dispatched.inc(),
            Event::ColumnTaskCompleted { latency_ns, .. } => {
                h.column_tasks_completed.inc();
                h.column_task_latency_ns.observe(latency_ns);
                self.feed.record_column(latency_ns);
            }
            Event::SubtreeTaskDelegated { rows, .. } => {
                h.subtree_tasks_delegated.inc();
                h.subtree_handoff_rows.observe(rows);
            }
            Event::SubtreeTaskBuilt { latency_ns, .. } => {
                h.subtree_tasks_built.inc();
                h.subtree_task_latency_ns.observe(latency_ns);
                self.feed.record_subtree(latency_ns);
            }
            Event::BplanPush { end, depth, .. } => {
                match end {
                    DequeEnd::Head => h.bplan_push_head.inc(),
                    DequeEnd::Tail => h.bplan_push_tail.inc(),
                }
                h.bplan_depth.observe(depth as u64);
            }
            Event::SplitChosen { .. } => h.splits_chosen.inc(),
            Event::TaskComputed { busy_ns, .. } => h.comper_busy_ns.observe(busy_ns),
            Event::WorkerCrashed { .. } => h.workers_crashed.inc(),
            Event::WorkerRecovered { .. } => h.workers_recovered.inc(),
            Event::MessageDropped { .. } => h.messages_dropped.inc(),
            Event::MessageDelayed { .. } => h.messages_delayed.inc(),
            Event::RetrySent { .. } => h.retries_sent.inc(),
            Event::DupDropped { .. } => h.dups_dropped.inc(),
            Event::HeartbeatMissed { .. } => h.heartbeats_missed.inc(),
            Event::WorkerSuspected { .. } => h.workers_suspected.inc(),
            Event::CrashInjected { .. } => h.crashes_injected.inc(),
            Event::NetSend { .. } => {} // accounted in on_net_send
            Event::GbtRound { .. } => h.gbt_rounds.inc(),
            Event::StealRequested { .. } => h.steals_requested.inc(),
            Event::PlanStolen { .. } => h.plans_stolen.inc(),
            Event::WorkerJoined { .. } => h.workers_joined.inc(),
            Event::WorkerDraining { .. } => h.workers_draining.inc(),
            Event::WorkerDeparted { .. } => h.workers_departed.inc(),
            Event::ColumnMigrated { .. } => h.columns_migrated.inc(),
        }
    }

    /// Fabric send hook: every send hits the counter and byte histogram;
    /// one in `net_sample_every` sends *per directed edge* also lands a
    /// ring event on the sender. Sequence counters are per edge so the
    /// first send on an edge is always recorded — a globally-shared
    /// counter would let a busy edge sample out another edge's first
    /// send, orphaning its flow arrows in the Chrome trace.
    pub fn on_net_send(&self, from: u32, to: u32, bytes: u64) {
        self.hot.net_sends.inc();
        self.hot.net_send_bytes.observe(bytes);
        if self.net_sample_every == 0 {
            return;
        }
        let n = self.rings.len();
        let edge = (from as usize)
            .checked_mul(n)
            .and_then(|e| e.checked_add(to as usize))
            .filter(|_| (from as usize) < n && (to as usize) < n)
            .unwrap_or(n * n);
        let seq = self.net_seq[edge].fetch_add(1, Ordering::Relaxed);
        if seq.is_multiple_of(self.net_sample_every) {
            self.push(from, Event::NetSend { from, to, bytes });
        }
    }

    /// The metrics registry (for ad-hoc counters outside the hot set).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The rolling task-latency feed (p50/p95 of completed column- and
    /// subtree-task spans) — the observation half of adaptive τ.
    pub fn latency_feed(&self) -> &LatencyFeed {
        &self.feed
    }

    /// Whether the master should log the latency feed at job finish.
    pub fn log_latency_feed(&self) -> bool {
        self.log_latency_feed
    }

    /// The span DAG reconstructed from the currently-readable events.
    pub fn span_dag(&self) -> SpanDag {
        SpanDag::from_events(&self.events())
    }

    /// The critical-path report for the slowest-finishing job, if any job
    /// span has closed.
    pub fn trace_report(&self) -> Option<TraceReport> {
        TraceReport::build(&self.span_dag())
    }

    /// Every currently-readable event across all rings, in timestamp order.
    pub fn events(&self) -> Vec<TimedEvent> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.collect(&mut out);
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    /// Total events ever recorded (including lost ones).
    pub fn events_total(&self) -> u64 {
        self.rings.iter().map(|r| r.total()).sum()
    }

    /// Events no longer readable (ring overwrite or writer collision).
    pub fn events_lost(&self) -> u64 {
        self.rings.iter().map(|r| r.lost()).sum()
    }

    /// A point-in-time copy of all metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The collected events as a Chrome trace-event JSON document.
    pub fn chrome_trace_json(&self) -> String {
        chrome::export(self.events())
    }

    /// The metrics (plus event accounting) as a JSON object string.
    pub fn metrics_json(&self) -> String {
        let mut s = String::from("{");
        self.metrics().write_json_fields(&mut s);
        s.push_str(&format!(
            ",\"events_total\":{},\"events_lost\":{}}}",
            self.events_total(),
            self.events_lost()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert!(ObsConfig::enabled().enabled);
    }

    #[test]
    fn record_lands_in_ring_and_metrics() {
        let rec = Recorder::new(3, &ObsConfig::enabled());
        rec.record(0, Event::JobSubmitted { job: 1 });
        rec.record(
            1,
            Event::ColumnTaskCompleted {
                task: 9,
                node: 1,
                latency_ns: 500,
            },
        );
        rec.record(0, Event::JobFinished { job: 1 });
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let m = rec.metrics();
        assert_eq!(m.counter("jobs_submitted"), 1);
        assert_eq!(m.counter("jobs_finished"), 1);
        assert_eq!(m.counter("column_tasks_completed"), 1);
        assert_eq!(m.histogram("column_task_latency_ns").unwrap().count, 1);
        assert_eq!(rec.events_lost(), 0);
    }

    #[test]
    fn out_of_range_node_falls_back_to_master_ring() {
        let rec = Recorder::new(2, &ObsConfig::enabled());
        rec.record(99, Event::WorkerCrashed { node: 99 });
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn net_send_sampling() {
        let cfg = ObsConfig {
            net_sample_every: 10,
            ..ObsConfig::enabled()
        };
        let rec = Recorder::new(2, &cfg);
        for _ in 0..100 {
            rec.on_net_send(0, 1, 64);
        }
        let m = rec.metrics();
        assert_eq!(m.counter("net_sends"), 100);
        assert_eq!(m.histogram("net_send_bytes").unwrap().count, 100);
        let ring_events = rec
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::NetSend { .. }))
            .count();
        assert_eq!(ring_events, 10);
    }

    #[test]
    fn net_send_sampling_is_per_edge() {
        // A busy edge must not sample out another edge's *first* send:
        // interleave 30 sends on 0->1 with a single 1->0 send late in the
        // stream, and that one send must still land a ring event.
        let cfg = ObsConfig {
            net_sample_every: 10,
            ..ObsConfig::enabled()
        };
        let rec = Recorder::new(2, &cfg);
        for _ in 0..25 {
            rec.on_net_send(0, 1, 64);
        }
        rec.on_net_send(1, 0, 128);
        for _ in 0..5 {
            rec.on_net_send(0, 1, 64);
        }
        let events = rec.events();
        let edge = |from: u32, to: u32| {
            events
                .iter()
                .filter(
                    |e| matches!(e.event, Event::NetSend { from: f, to: t, .. } if f == from && t == to),
                )
                .count()
        };
        assert_eq!(edge(0, 1), 3, "seq 0, 10, 20 of the busy edge");
        assert_eq!(edge(1, 0), 1, "first send on a fresh edge always lands");
    }

    #[test]
    fn net_send_out_of_range_endpoint_uses_fallback_slot() {
        let cfg = ObsConfig {
            net_sample_every: 10,
            ..ObsConfig::enabled()
        };
        let rec = Recorder::new(2, &cfg);
        rec.on_net_send(7, 9, 64); // out of range: must not panic
        assert_eq!(rec.metrics().counter("net_sends"), 1);
    }

    #[test]
    fn net_send_sampling_disabled_at_zero() {
        let cfg = ObsConfig {
            net_sample_every: 0,
            ..ObsConfig::enabled()
        };
        let rec = Recorder::new(2, &cfg);
        rec.on_net_send(0, 1, 64);
        assert_eq!(rec.metrics().counter("net_sends"), 1);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn task_completions_feed_the_latency_feed() {
        let rec = Recorder::new(2, &ObsConfig::enabled());
        rec.record(
            0,
            Event::ColumnTaskCompleted {
                task: 1,
                node: 1,
                latency_ns: 1_000,
            },
        );
        rec.record(
            0,
            Event::SubtreeTaskBuilt {
                task: 2,
                node: 1,
                nodes: 3,
                latency_ns: 9_000,
            },
        );
        let snap = rec.latency_feed().snapshot();
        assert_eq!(snap.column.count, 1);
        assert_eq!(snap.column.p50_ns, 1_000);
        assert_eq!(snap.subtree.count, 1);
        assert_eq!(snap.subtree.p95_ns, 9_000);
    }

    #[test]
    fn recorder_builds_a_trace_report_from_span_events() {
        let rec = Recorder::new(2, &ObsConfig::enabled());
        rec.record(
            0,
            Event::SpanOpen {
                trace: 1,
                span: 1,
                parent: 0,
                kind: SpanKind::Job,
                subject: 0,
            },
        );
        assert!(rec.trace_report().is_none(), "job still open");
        rec.record(0, Event::SpanClose { span: 1 });
        let report = rec.trace_report().expect("job closed");
        assert_eq!(report.root_span, 1);
        assert_eq!(report.phase_sum_ns(), report.wall_ns);
        let m = rec.metrics();
        assert_eq!(m.counter("spans_opened"), 1);
        assert_eq!(m.counter("spans_closed"), 1);
    }

    #[test]
    fn json_exports_are_well_formed() {
        let rec = Recorder::new(2, &ObsConfig::enabled());
        rec.record(0, Event::JobSubmitted { job: 0 });
        rec.record(0, Event::JobFinished { job: 0 });
        let trace = rec.chrome_trace_json();
        assert!(trace.contains("\"traceEvents\":["), "{trace}");
        let metrics = rec.metrics_json();
        assert!(
            metrics.starts_with('{') && metrics.ends_with('}'),
            "{metrics}"
        );
        assert!(metrics.contains("\"events_total\":2"), "{metrics}");
        assert!(metrics.contains("\"events_lost\":0"), "{metrics}");
    }
}
