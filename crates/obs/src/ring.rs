//! A fixed-capacity, lock-free, drop-oldest event ring.
//!
//! One ring per simulated machine. Writers are the machine's own threads
//! plus the master threads recording on its behalf; readers are snapshot
//! calls (`report()`, exporters) that may run concurrently with writers.
//!
//! Design (per-slot seqlock over a Vyukov-style ticket ring):
//!
//! - `head` is a monotonically increasing ticket counter; a writer claims
//!   slot `ticket & mask`, overwriting whatever `capacity` tickets ago wrote
//!   there (drop-oldest).
//! - Each slot carries a sequence word: `0` = never written, odd = write in
//!   progress, `2 * ticket + 2` = complete. Writers claim the slot with a
//!   CAS to the odd value; a failed claim (another writer wrapped onto the
//!   same slot at the same instant — only possible when the ring is at
//!   least `capacity` events behind) drops the record and counts it.
//! - Readers snapshot a slot seqlock-style: load the sequence, copy the
//!   payload with a volatile read, re-check the sequence; a torn copy is
//!   discarded. Records are `Copy`, so a discarded copy needs no cleanup.

use crate::event::TimedEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};

pub(crate) struct Ring {
    mask: u64,
    head: AtomicU64,
    /// Records dropped because a slot claim failed (writer collision).
    contended: AtomicU64,
    seq: Box<[AtomicU64]>,
    slots: Box<[UnsafeCell<MaybeUninit<TimedEvent>>]>,
}

// The UnsafeCell slots are only accessed under the per-slot seqlock
// protocol above.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(8);
        Ring {
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            seq: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.seq.len()
    }

    /// Records one event, overwriting the oldest when full.
    pub(crate) fn push(&self, rec: TimedEvent) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let i = (ticket & self.mask) as usize;
        let cur = self.seq[i].load(Ordering::Relaxed);
        // Drop on collision: an odd sequence is a write in progress, and a
        // newer complete value means a faster writer already lapped us.
        if cur & 1 == 1
            || cur > 2 * ticket + 1
            || self.seq[i]
                .compare_exchange(cur, 2 * ticket + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { (*self.slots[i].get()).write(rec) };
        self.seq[i].store(2 * ticket + 2, Ordering::Release);
    }

    /// Appends every currently-readable record to `out` (unordered).
    pub(crate) fn collect(&self, out: &mut Vec<TimedEvent>) {
        for i in 0..self.seq.len() {
            let s1 = self.seq[i].load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            // Seqlock read: copy, fence, validate. A torn copy of a `Copy`
            // payload is discarded before anyone looks at it.
            let copy = unsafe { std::ptr::read_volatile(self.slots[i].get()) };
            fence(Ordering::Acquire);
            if self.seq[i].load(Ordering::Relaxed) == s1 {
                out.push(unsafe { copy.assume_init() });
            }
        }
    }

    /// Total records ever pushed (including overwritten and dropped ones).
    pub(crate) fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records no longer readable: overwritten by wrap-around plus writer
    /// collisions.
    pub(crate) fn lost(&self) -> u64 {
        let overwritten = self.total().saturating_sub(self.seq.len() as u64);
        overwritten + self.contended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use std::sync::Arc;

    fn ev(ts: u64) -> TimedEvent {
        TimedEvent {
            ts_ns: ts,
            node: 0,
            event: Event::JobSubmitted { job: ts },
        }
    }

    #[test]
    fn roundtrips_below_capacity() {
        let r = Ring::new(16);
        for i in 0..10 {
            r.push(ev(i));
        }
        let mut out = Vec::new();
        r.collect(&mut out);
        out.sort_by_key(|e| e.ts_ns);
        assert_eq!(out.len(), 10);
        assert_eq!(out[3], ev(3));
        assert_eq!(r.total(), 10);
        assert_eq!(r.lost(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = Ring::new(8);
        for i in 0..20 {
            r.push(ev(i));
        }
        let mut out = Vec::new();
        r.collect(&mut out);
        out.sort_by_key(|e| e.ts_ns);
        assert_eq!(out.len(), 8, "ring keeps exactly its capacity");
        assert_eq!(out[0], ev(12), "oldest records were dropped");
        assert_eq!(out[7], ev(19));
        assert_eq!(r.lost(), 12);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::new(100).capacity(), 128);
        assert_eq!(Ring::new(1).capacity(), 8);
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        let r = Arc::new(Ring::new(1 << 10));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000 {
                    r.push(ev(t * 1_000_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.total(), 20_000);
        let mut out = Vec::new();
        r.collect(&mut out);
        assert!(out.len() <= r.capacity());
        // Every surviving record must be one that was actually written.
        for e in &out {
            let t = e.ts_ns / 1_000_000;
            let i = e.ts_ns % 1_000_000;
            assert!(t < 4 && i < 5_000, "torn or invented record {e:?}");
        }
        assert!(out.len() as u64 + r.lost() >= 20_000 - r.capacity() as u64);
    }

    #[test]
    fn collect_while_writing_sees_only_whole_records() {
        let r = Arc::new(Ring::new(64));
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..50_000 {
                    r.push(ev(i));
                }
            })
        };
        let mut out = Vec::new();
        for _ in 0..200 {
            out.clear();
            r.collect(&mut out);
            for e in &out {
                assert!(e.ts_ns < 50_000);
                assert!(matches!(e.event, Event::JobSubmitted { job } if job == e.ts_ns));
            }
        }
        writer.join().unwrap();
    }
}
