//! Seeded property testing for the workspace.
//!
//! A deliberately small replacement for the `proptest` subset the test
//! suites use: composable [`Strategy`] values, a `proptest! {}` macro that
//! generates `#[test]` functions, `prop_assert!`-style assertions, and the
//! weighted `prop_oneof!` / `collection::vec` / `option::of` combinators.
//!
//! Every case is derived from a single base seed — `TS_SEED` in the
//! environment, or a fixed default — mixed with the test name and case
//! index, so any failure is replayable with
//! `TS_SEED=<printed seed> cargo test <test_name>`. There is no shrinking:
//! the failing case's seed is printed instead, and the generators here are
//! small enough that failures stay readable.

use std::ops::{Range, RangeInclusive};

pub use tsrand::{Rng, SeedableRng, StdRng};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// How a test macro invocation runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for proptest compatibility and ignored: tscheck never
    /// shrinks (failures replay whole via `TS_SEED`).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed case. Produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a second strategy from each generated value (dependent
    /// generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Transforms values, rejecting those mapped to `None` (bounded
    /// retries; `whence` names the filter in the panic on exhaustion).
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMapStrategy {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMapStrategy<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMapStrategy<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        for _ in 0..1_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "[tscheck] filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen_fn: Box<dyn Fn(&mut StdRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Ranges generate uniformly from themselves.
impl<T> Strategy for Range<T>
where
    Range<T>: tsrand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: tsrand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A uniform draw over a whole primitive type: `any::<bool>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

/// Primitive types `any` supports.
pub trait ArbitraryValue: tsrand::Standard {}

impl ArbitraryValue for bool {}
impl ArbitraryValue for u32 {}
impl ArbitraryValue for u64 {}
impl ArbitraryValue for usize {}
impl ArbitraryValue for f64 {}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
);

/// Weighted choice between strategies of one value type (see
/// [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed during construction")
    }
}

pub mod collection {
    //! Container strategies.
    use super::{SizeRange, StdRng, Strategy};
    use tsrand::Rng;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                rng.gen_range(self.size.lo..self.size.hi)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Element-count specification for [`collection::vec`]: an exact count or
/// a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::{StdRng, Strategy};
    use tsrand::Rng;

    /// `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The runner

/// The base seed: `TS_SEED` (decimal or 0x-hex) or a fixed default.
pub fn base_seed() -> u64 {
    match std::env::var("TS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("TS_SEED must be a u64, got {s:?}"))
        }
        Err(_) => 0x7153_EED0_DEFA_0175,
    }
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` seeded cases of `body`, panicking with a reproduction
/// recipe on the first failure. Invoked by the `proptest!` macro.
pub fn run_cases<F>(cfg: ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = base_seed();
    let name_hash = fnv1a(test_name);
    for case in 0..cfg.cases {
        let case_seed = mix(mix(base, name_hash), case as u64);
        let mut rng = StdRng::seed_from_u64(case_seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "[tscheck] {test_name}: case {case}/{total} failed\n\
                 {e}\n\
                 reproduce with: TS_SEED={base} cargo test {test_name}  \
                 (case seed {case_seed:#018x})",
                total = cfg.cases,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros

/// Generates seeded `#[test]` functions from `fn name(arg in strategy, ..)`
/// items, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__tscheck_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__tscheck_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __tscheck_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(__cfg, stringify!($name), |__tscheck_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __tscheck_rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__tscheck_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current case (returning its seeded reproduction recipe) when
/// the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Erases a strategy for use in heterogeneous lists ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    s.boxed()
}

/// Chooses between strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![4 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((($weight) as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{base_seed, collection, option, run_cases, SeedableRng, StdRng};

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-2i32..=2).generate(&mut rng);
            assert!((-2..=2).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (1usize..5)
            .prop_map(|n| n * 10)
            .prop_flat_map(|n| n..n + 3)
            .prop_filter_map("even only", |n| (n % 2 == 0).then_some(n));
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (10..43).contains(&v));
        }
    }

    #[test]
    fn vec_and_option_and_oneof() {
        let mut rng = StdRng::seed_from_u64(3);
        let vs = collection::vec((0u32..5, any::<bool>()), 2..7);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = vs.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            match option::of(0u64..9).generate(&mut rng) {
                Some(x) => {
                    assert!(x < 9);
                    saw_some = true;
                }
                None => saw_none = true,
            }
            let c = prop_oneof![4 => Just(1u8), 1 => Just(2u8)].generate(&mut rng);
            assert!(c == 1 || c == 2);
        }
        assert!(saw_none && saw_some);
        // Exact-size vecs.
        assert_eq!(
            collection::vec(Just(0u8), 7usize).generate(&mut rng).len(),
            7
        );
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut first = Vec::new();
        run_cases(
            ProptestConfig {
                cases: 5,
                ..ProptestConfig::default()
            },
            "det_check",
            |rng| {
                first.push((0u64..1_000_000).generate(rng));
                Ok(())
            },
        );
        let mut second = Vec::new();
        run_cases(
            ProptestConfig {
                cases: 5,
                ..ProptestConfig::default()
            },
            "det_check",
            |rng| {
                second.push((0u64..1_000_000).generate(rng));
                Ok(())
            },
        );
        assert_eq!(first, second);
        let mut other = Vec::new();
        run_cases(
            ProptestConfig {
                cases: 5,
                ..ProptestConfig::default()
            },
            "other_name",
            |rng| {
                other.push((0u64..1_000_000).generate(rng));
                Ok(())
            },
        );
        assert_ne!(first, other, "different tests draw different streams");
    }

    #[test]
    fn failure_panics_with_reproduction_recipe() {
        let err = std::panic::catch_unwind(|| {
            run_cases(
                ProptestConfig {
                    cases: 10,
                    ..ProptestConfig::default()
                },
                "always_fails",
                |_rng| Err(TestCaseError::fail("nope")),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("always_fails") && msg.contains("TS_SEED="),
            "{msg}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro layer itself: patterns, multiple args, early return.
        #[test]
        fn macro_generates_cases(a in 0u32..50, (b, flip) in (5usize..9, any::<bool>())) {
            if flip {
                return Ok(());
            }
            prop_assert!(a < 50);
            prop_assert_eq!(b.clamp(5, 8), b);
            prop_assert_ne!(b, 100);
        }
    }

    #[test]
    fn default_base_seed_is_stable() {
        if std::env::var("TS_SEED").is_err() {
            assert_eq!(base_seed(), 0x7153_EED0_DEFA_0175);
        }
    }
}
