#![cfg(feature = "obs")]
//! Replayability acceptance: with a virtual clock and a fault plan, the obs
//! event stream of a message sequence is a *pure function of the seed* —
//! two runs produce byte-identical event logs, so any injected failure can
//! be reproduced from the seed alone.

use std::sync::Arc;
use std::time::Duration;
use ts_netsim::{Fabric, FaultPlan, NetModel, NetStats, SimClock, WireSized};

#[derive(Clone)]
struct Msg(usize);

impl WireSized for Msg {
    fn wire_bytes(&self) -> usize {
        self.0
    }
}

/// Pushes a fixed traffic pattern through a faulty fabric on a virtual
/// clock and returns the serialized obs event log.
fn run(seed: u64) -> String {
    let n = 4;
    let clock = SimClock::virtual_at(0);
    let stats = NetStats::new(n);
    let rec = Arc::new(ts_obs::Recorder::with_time_source(
        n,
        &ts_obs::ObsConfig::enabled(),
        clock
            .time_source()
            .expect("virtual clock exposes its counter"),
    ));
    stats.set_recorder(Arc::clone(&rec));
    let plan = FaultPlan::new(seed)
        .with_message_drops(0.15)
        .with_message_delays(0.25, Duration::from_millis(5));
    let (fabric, _rxs) =
        Fabric::<Msg>::new_faulty(n, NetModel::gige(), Arc::clone(&stats), Some(plan), clock);
    for i in 0..400usize {
        // (from, to) never coincide for n = 4: from and i*7+1 differ in parity.
        let _ = fabric.send(i % n, (i * 7 + 1) % n, Msg(64 + (i * 13) % 512));
    }
    format!("{:?}", rec.events())
}

/// A frame that carries a trace context, like the engine's real messages.
#[derive(Clone)]
struct SpanMsg {
    bytes: usize,
    ctx: ts_obs::TraceCtx,
}

impl WireSized for SpanMsg {
    fn wire_bytes(&self) -> usize {
        self.bytes
    }
    fn trace_ctx(&self) -> ts_obs::TraceCtx {
        self.ctx
    }
}

/// Runs a synthetic traced job — master span, one plan span, a fan-out of
/// task spans whose frames cross a faulty fabric — entirely on the virtual
/// clock, and returns the reconstructed span DAG (debug form) plus the
/// `TraceReport` JSON.
fn run_spans(seed: u64) -> (String, String) {
    use ts_obs::{Event, SpanKind, TraceCtx};
    let n = 4;
    let clock = SimClock::virtual_at(0);
    let stats = NetStats::new(n);
    let rec = Arc::new(ts_obs::Recorder::with_time_source(
        n,
        &ts_obs::ObsConfig::enabled(),
        clock
            .time_source()
            .expect("virtual clock exposes its counter"),
    ));
    stats.set_recorder(Arc::clone(&rec));
    let plan = FaultPlan::new(seed)
        .with_message_drops(0.10)
        .with_message_delays(0.25, Duration::from_millis(5))
        .with_message_duplicates(0.10);
    let (fabric, _rxs) =
        Fabric::<SpanMsg>::new_faulty(n, NetModel::gige(), Arc::clone(&stats), Some(plan), clock);

    let trace = 1u64;
    rec.record(
        0,
        Event::SpanOpen {
            trace,
            span: 1,
            parent: 0,
            kind: SpanKind::Job,
            subject: 0,
        },
    );
    rec.record(
        0,
        Event::SpanOpen {
            trace,
            span: 2,
            parent: 1,
            kind: SpanKind::Plan,
            subject: 0,
        },
    );
    rec.record(0, Event::SpanActive { span: 2, node: 0 });
    for t in 0..12u64 {
        let span = 3 + t;
        let mut worker = (t as usize % (n - 1)) + 1;
        rec.record(
            0,
            Event::SpanOpen {
                trace,
                span,
                parent: 2,
                kind: SpanKind::ColumnTask,
                subject: t,
            },
        );
        let ctx = TraceCtx::new(trace, ts_obs::SpanId(span));
        // Every third task is stolen, like the engine's `ts-sched` path:
        // the hungry thief's request, the master's verdict, and a
        // header-only Donate frame carrying the stolen task's span — all
        // of it rides the same faulty fabric and must replay identically.
        if t % 3 == 2 {
            let victim = worker;
            let thief = (victim % (n - 1)) + 1;
            rec.record(
                thief as u32,
                Event::StealRequested {
                    worker: thief as u32,
                },
            );
            let _ = fabric.send(
                thief,
                0,
                SpanMsg {
                    bytes: 24,
                    ctx: TraceCtx::NONE,
                },
            );
            rec.record(
                0,
                Event::PlanStolen {
                    task: t,
                    victim: victim as u32,
                    thief: thief as u32,
                },
            );
            let _ = fabric.send(0, thief, SpanMsg { bytes: 24, ctx });
            worker = thief;
        }
        // The plan frame carries the span across the (faulty) fabric; the
        // result frame carries it back.
        let _ = fabric.send(0, worker, SpanMsg { bytes: 256, ctx });
        rec.record(
            worker as u32,
            Event::SpanRecv {
                span,
                node: worker as u32,
            },
        );
        rec.record(
            worker as u32,
            Event::SpanActive {
                span,
                node: worker as u32,
            },
        );
        rec.record(
            worker as u32,
            Event::TaskComputed {
                task: t,
                node: worker as u32,
                busy_ns: 1_000,
            },
        );
        let _ = fabric.send(worker, 0, SpanMsg { bytes: 64, ctx });
        rec.record(0, Event::SpanClose { span });
    }
    rec.record(0, Event::SpanClose { span: 2 });
    rec.record(0, Event::SpanClose { span: 1 });

    let events = rec.events();
    let dag = ts_obs::SpanDag::from_events(&events);
    let report = ts_obs::TraceReport::build(&dag).expect("job span closed");
    (format!("{dag:?}"), report.to_json())
}

/// Drives a synthetic membership-churn run — a scripted mid-run join, a
/// scripted preemption with a grace window, per-machine work/bandwidth
/// heterogeneity, and a lossy fabric — entirely on the virtual clock, and
/// returns the serialized obs event log. The membership schedule comes out
/// of the [`FaultPlan`] accessors, so this exercises exactly the state the
/// engine's `membership-orch` thread consumes.
fn run_membership(seed: u64) -> String {
    use ts_obs::Event;
    let n = 5; // master + 3 initial workers + 1 pre-provisioned join slot
    let clock = SimClock::virtual_at(0);
    let stats = NetStats::new(n);
    let rec = Arc::new(ts_obs::Recorder::with_time_source(
        n,
        &ts_obs::ObsConfig::enabled(),
        clock
            .time_source()
            .expect("virtual clock exposes its counter"),
    ));
    stats.set_recorder(Arc::clone(&rec));
    let plan = FaultPlan::new(seed)
        .with_message_drops(0.10)
        .with_message_delays(0.20, Duration::from_millis(3))
        .with_worker_join(Duration::from_millis(2), 1)
        .with_preemption(Duration::from_millis(6), 2, Duration::from_millis(20))
        .with_work_scale(3, 0.5)
        .with_bandwidth_scale(4, 2.0);
    let (join_at, joiners) = plan.worker_join().expect("join scripted");
    let (preempt_at, victim, _grace) = plan.preemption().expect("preemption scripted");
    let (fabric, _rxs) =
        Fabric::<Msg>::new_faulty(n, NetModel::gige(), Arc::clone(&stats), Some(plan), clock);

    let joiner = n - 1; // the pre-provisioned slot
    let mut joined = false;
    let mut draining = false;
    for i in 0..300usize {
        let now = i as u64 * 40_000; // 40 µs per tick of synthetic traffic
        if !joined && now >= join_at {
            for j in 0..joiners {
                let w = (joiner + j) as u32;
                rec.record(0, Event::WorkerJoined { node: w });
                // Join top-up: the new holder pulls a replica per column.
                let _ = fabric.send(1, joiner + j, Msg(4096));
                rec.record(
                    0,
                    Event::ColumnMigrated {
                        attr: j as u32,
                        from: 1,
                        to: w,
                    },
                );
            }
            joined = true;
        }
        if !draining && now >= preempt_at {
            rec.record(
                0,
                Event::WorkerDraining {
                    node: victim as u32,
                },
            );
            // Pre-departure handoff: the leaver serves its own columns out.
            let _ = fabric.send(victim, joiner, Msg(4096));
            rec.record(
                0,
                Event::ColumnMigrated {
                    attr: 9,
                    from: victim as u32,
                    to: joiner as u32,
                },
            );
            rec.record(
                0,
                Event::WorkerDeparted {
                    node: victim as u32,
                },
            );
            draining = true;
        }
        let from = i % n;
        let mut to = (i * 7 + 1) % n;
        if draining && (from == victim || to == victim) {
            continue; // departed workers send and receive nothing
        }
        if to == from {
            to = (to + 1) % n;
        }
        let _ = fabric.send(from, to, Msg(64 + (i * 13) % 512));
    }
    format!("{:?}", rec.events())
}

#[test]
fn same_fault_seed_replays_byte_identically() {
    let a = run(0xD5);
    let b = run(0xD5);
    assert_eq!(a, b, "same seed must reproduce the exact event log");
    assert!(
        a.contains("MessageDropped"),
        "the plan should have dropped something"
    );
    assert!(
        a.contains("MessageDelayed"),
        "the plan should have delayed something"
    );
    let c = run(0xBEEF);
    assert_ne!(a, c, "a different seed must pick different faults");
}

#[test]
fn membership_churn_replays_byte_identically() {
    let a = run_membership(0xE1A5);
    let b = run_membership(0xE1A5);
    assert_eq!(
        a, b,
        "same seed must reproduce the exact membership-churn event log"
    );
    for ev in [
        "WorkerJoined",
        "WorkerDraining",
        "WorkerDeparted",
        "ColumnMigrated",
    ] {
        assert!(a.contains(ev), "log should contain {ev}");
    }
    assert!(
        a.contains("MessageDropped"),
        "the lossy plan should have dropped something"
    );
    let c = run_membership(0x5EED);
    assert_ne!(
        a, c,
        "a different seed must pick different faults around the same schedule"
    );
}

#[test]
fn span_dag_and_critical_path_replay_byte_identically_under_faults() {
    let (dag_a, report_a) = run_spans(0xC0FFEE);
    let (dag_b, report_b) = run_spans(0xC0FFEE);
    assert_eq!(dag_a, dag_b, "same seed must rebuild the same span DAG");
    assert_eq!(
        report_a, report_b,
        "same seed must produce a byte-identical trace report"
    );
    // The report is non-trivial: a real critical path with phase totals
    // that tile the root span's wall clock exactly.
    assert!(report_a.contains("\"critical_path\""));
    assert!(report_a.contains("column_task"));
    let (_, report_c) = run_spans(0xDECAF);
    assert_ne!(
        report_a, report_c,
        "different fault seeds change delivery timing, hence the report"
    );
}
