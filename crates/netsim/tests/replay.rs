#![cfg(feature = "obs")]
//! Replayability acceptance: with a virtual clock and a fault plan, the obs
//! event stream of a message sequence is a *pure function of the seed* —
//! two runs produce byte-identical event logs, so any injected failure can
//! be reproduced from the seed alone.

use std::sync::Arc;
use std::time::Duration;
use ts_netsim::{Fabric, FaultPlan, NetModel, NetStats, SimClock, WireSized};

#[derive(Clone)]
struct Msg(usize);

impl WireSized for Msg {
    fn wire_bytes(&self) -> usize {
        self.0
    }
}

/// Pushes a fixed traffic pattern through a faulty fabric on a virtual
/// clock and returns the serialized obs event log.
fn run(seed: u64) -> String {
    let n = 4;
    let clock = SimClock::virtual_at(0);
    let stats = NetStats::new(n);
    let rec = Arc::new(ts_obs::Recorder::with_time_source(
        n,
        &ts_obs::ObsConfig::enabled(),
        clock
            .time_source()
            .expect("virtual clock exposes its counter"),
    ));
    stats.set_recorder(Arc::clone(&rec));
    let plan = FaultPlan::new(seed)
        .with_message_drops(0.15)
        .with_message_delays(0.25, Duration::from_millis(5));
    let (fabric, _rxs) =
        Fabric::<Msg>::new_faulty(n, NetModel::gige(), Arc::clone(&stats), Some(plan), clock);
    for i in 0..400usize {
        // (from, to) never coincide for n = 4: from and i*7+1 differ in parity.
        let _ = fabric.send(i % n, (i * 7 + 1) % n, Msg(64 + (i * 13) % 512));
    }
    format!("{:?}", rec.events())
}

#[test]
fn same_fault_seed_replays_byte_identically() {
    let a = run(0xD5);
    let b = run(0xD5);
    assert_eq!(a, b, "same seed must reproduce the exact event log");
    assert!(
        a.contains("MessageDropped"),
        "the plan should have dropped something"
    );
    assert!(
        a.contains("MessageDelayed"),
        "the plan should have delayed something"
    );
    let c = run(0xBEEF);
    assert_ne!(a, c, "a different seed must pick different faults");
}
