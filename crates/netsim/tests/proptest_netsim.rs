//! Property tests for the cluster fabric: accounting conservation and
//! delay-model monotonicity under arbitrary traffic.

use std::sync::Arc;
use std::time::Duration;
use ts_netsim::{Fabric, NetModel, NetStats, WireSized};
use tscheck::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Msg(usize);

impl WireSized for Msg {
    fn wire_bytes(&self) -> usize {
        self.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Bytes and messages are conserved: total sent equals total received,
    /// and local sends are never accounted.
    #[test]
    fn accounting_conservation(
        n in 2usize..6,
        traffic in tscheck::collection::vec((0usize..6, 0usize..6, 0usize..10_000), 1..100),
    ) {
        let stats = NetStats::new(n);
        let (fabric, receivers) = Fabric::new(n, NetModel::instant(), Arc::clone(&stats));
        let mut expected_remote = 0u64;
        let mut expected_bytes = 0u64;
        for (from, to, size) in traffic {
            let (from, to) = (from % n, to % n);
            fabric.send(from, to, Msg(size)).unwrap();
            if from != to {
                expected_remote += 1;
                expected_bytes += size as u64;
            }
        }
        let snaps = stats.snapshot_all();
        let sent: u64 = snaps.iter().map(|s| s.sent_bytes).sum();
        let recv: u64 = snaps.iter().map(|s| s.recv_bytes).sum();
        prop_assert_eq!(sent, expected_bytes);
        prop_assert_eq!(recv, expected_bytes);
        let sent_msgs: u64 = snaps.iter().map(|s| s.sent_msgs).sum();
        prop_assert_eq!(sent_msgs, expected_remote);
        // Every message is still deliverable.
        let delivered: usize = receivers.iter().map(|r| r.try_iter().count()).sum();
        prop_assert!(delivered >= expected_remote as usize);
    }

    /// The delay model is monotone in payload size and additive in latency.
    #[test]
    fn delay_model_monotone(
        bw in 1_000.0f64..1e9,
        latency_us in 0u64..10_000,
        a in 0usize..1_000_000,
        b in 0usize..1_000_000,
    ) {
        let m = NetModel {
            bandwidth_bytes_per_sec: Some(bw),
            latency: Duration::from_micros(latency_us),
        };
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.delay_for(small) <= m.delay_for(large));
        prop_assert!(m.delay_for(small) >= Duration::from_micros(latency_us));
        // Accounting-only model: always zero.
        prop_assert_eq!(NetModel::instant().delay_for(large), Duration::ZERO);
    }

    /// Memory watermark: peak equals the max prefix sum of alloc/free.
    #[test]
    fn memory_watermark_matches_prefix_max(
        ops in tscheck::collection::vec((any::<bool>(), 1usize..10_000), 1..60),
    ) {
        let stats = NetStats::new(1);
        let mut cur: i64 = 0;
        let mut peak: i64 = 0;
        let mut held: Vec<usize> = Vec::new();
        for (alloc, size) in ops {
            if alloc || held.is_empty() {
                stats.mem_alloc(0, size);
                held.push(size);
                cur += size as i64;
                peak = peak.max(cur);
            } else {
                let s = held.pop().unwrap();
                stats.mem_free(0, s);
                cur -= s as i64;
            }
        }
        prop_assert_eq!(stats.snapshot(0).mem_peak, peak as u64);
    }
}
