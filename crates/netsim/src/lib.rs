//! In-process cluster simulation.
//!
//! The paper evaluates TreeServer on a 15-machine cluster with 1 GigE
//! links. This crate substitutes an in-process simulation (see DESIGN.md §2):
//! every "machine" is a set of real OS threads, machines exchange typed
//! messages over [`tschan`] channels, and every send is
//!
//! 1. **accounted** — payload bytes are charged to the sender's Send counter
//!    and the receiver's Recv counter (giving the paper's per-machine
//!    Send/Recv workload and Mbps figures), and
//! 2. **paced** — an optional [`NetModel`] sleeps the sending thread for
//!    `latency + bytes / bandwidth`, which serialises a machine's outbound
//!    traffic exactly like a shared NIC does. This is what recreates the
//!    master-outbound bottleneck of §V and the send-throughput saturation of
//!    Table VI at laptop scale.
//!
//! The paper's two channel types ("Task Comm." master↔workers and "Data
//! Comm." worker↔worker, Fig. 6) map to two [`Fabric`] instances sharing one
//! [`NetStats`].
//!
//! [`NetStats`] also aggregates per-machine *busy time* reported by compute
//! threads, from which the experiments derive the paper's "average CPU rate"
//! (e.g. 837% = 8.37 cores busy).

mod fault;

pub use fault::{FaultDecision, FaultPlan, SimClock};

use fault::FaultState;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tschan::sync::Mutex;
use tschan::{unbounded, Receiver, RecvError, Sender};

/// Identifies a machine in the simulated cluster. The engine uses `0` for
/// the master and `1..=w` for workers.
pub type NodeId = usize;

/// A message with a known payload size, so the fabric can account and pace it.
pub trait WireSized {
    /// Approximate serialized size in bytes.
    fn wire_bytes(&self) -> usize;

    /// The causal span context the message carries, if any. The reliable
    /// fabric reads it to attribute retransmissions and duplicate drops to
    /// the originating span; defaults to [`TraceCtx::NONE`] for payloads
    /// outside any trace (heartbeats, raw test messages).
    fn trace_ctx(&self) -> ts_obs::TraceCtx {
        ts_obs::TraceCtx::NONE
    }
}

/// The link model applied to every non-local send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Link bandwidth in bytes/second; `None` disables the bandwidth sleep.
    pub bandwidth_bytes_per_sec: Option<f64>,
    /// Fixed per-message latency.
    pub latency: Duration,
}

impl NetModel {
    /// No pacing at all: accounting only. Unit tests use this.
    pub fn instant() -> NetModel {
        NetModel {
            bandwidth_bytes_per_sec: None,
            latency: Duration::ZERO,
        }
    }

    /// The paper's testbed link: 1 GigE (~125 MB/s) with a small fixed
    /// per-message latency.
    pub fn gige() -> NetModel {
        NetModel {
            bandwidth_bytes_per_sec: Some(125_000_000.0),
            latency: Duration::from_micros(200),
        }
    }

    /// A deliberately slow link for tests that need visible contention.
    pub fn slow(bytes_per_sec: f64, latency: Duration) -> NetModel {
        NetModel {
            bandwidth_bytes_per_sec: Some(bytes_per_sec),
            latency,
        }
    }

    /// The transmission delay this model assigns to a payload.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        let bw = match self.bandwidth_bytes_per_sec {
            Some(b) if b > 0.0 && b.is_finite() => Duration::from_secs_f64(bytes as f64 / b),
            _ => Duration::ZERO,
        };
        self.latency + bw
    }
}

/// Per-machine counters, shared across fabrics.
#[derive(Debug)]
struct NodeCounters {
    sent_bytes: AtomicU64,
    recv_bytes: AtomicU64,
    sent_msgs: AtomicU64,
    recv_msgs: AtomicU64,
    busy_ns: AtomicU64,
    mem_current: AtomicU64,
    mem_peak: AtomicU64,
}

impl NodeCounters {
    fn new() -> Self {
        NodeCounters {
            sent_bytes: AtomicU64::new(0),
            recv_bytes: AtomicU64::new(0),
            sent_msgs: AtomicU64::new(0),
            recv_msgs: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            mem_current: AtomicU64::new(0),
            mem_peak: AtomicU64::new(0),
        }
    }
}

/// A point-in-time snapshot of one machine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, tsjson::Serialize)]
pub struct NodeSnapshot {
    /// Total payload bytes sent.
    pub sent_bytes: u64,
    /// Total payload bytes received.
    pub recv_bytes: u64,
    /// Messages sent.
    pub sent_msgs: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Nanoseconds of compute-thread busy time.
    pub busy_ns: u64,
    /// Peak tracked task memory in bytes.
    pub mem_peak: u64,
}

impl std::fmt::Display for NodeSnapshot {
    /// Paper units: megabytes for traffic and memory, seconds for busy time.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent {:>9.2} MB ({:>6} msgs)  recv {:>9.2} MB ({:>6} msgs)  busy {:>7.2} s  peak mem {:>8.2} MB",
            self.sent_bytes as f64 / 1e6,
            self.sent_msgs,
            self.recv_bytes as f64 / 1e6,
            self.recv_msgs,
            self.busy_ns as f64 / 1e9,
            self.mem_peak as f64 / 1e6,
        )
    }
}

/// Cluster-wide statistics: communication counters, compute busy time and
/// task-memory watermarks per machine.
#[derive(Debug)]
pub struct NetStats {
    nodes: Vec<NodeCounters>,
    started: Instant,
    /// The attached event recorder, set once by whoever launches the
    /// cluster. Living on `NetStats` lets every engine thread reach it
    /// without new constructor parameters: they all already share the stats.
    #[cfg(feature = "obs")]
    recorder: std::sync::OnceLock<Arc<ts_obs::Recorder>>,
}

impl NetStats {
    /// Creates statistics for `n` machines.
    pub fn new(n: usize) -> Arc<NetStats> {
        Arc::new(NetStats {
            nodes: (0..n).map(|_| NodeCounters::new()).collect(),
            started: Instant::now(),
            #[cfg(feature = "obs")]
            recorder: std::sync::OnceLock::new(),
        })
    }

    /// Attaches an event recorder. Later calls are ignored (first one wins).
    #[cfg(feature = "obs")]
    pub fn set_recorder(&self, rec: Arc<ts_obs::Recorder>) {
        let _ = self.recorder.set(rec);
    }

    /// The attached event recorder, if any.
    #[cfg(feature = "obs")]
    pub fn recorder(&self) -> Option<&Arc<ts_obs::Recorder>> {
        self.recorder.get()
    }

    /// Number of machines tracked.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Records a message of `bytes` from `from` to `to`.
    pub fn record_send(&self, from: NodeId, to: NodeId, bytes: usize) {
        self.nodes[from]
            .sent_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.nodes[from].sent_msgs.fetch_add(1, Ordering::Relaxed);
        self.nodes[to]
            .recv_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.nodes[to].recv_msgs.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        if let Some(rec) = self.recorder.get() {
            rec.on_net_send(from as u32, to as u32, bytes as u64);
        }
    }

    /// Adds compute busy time for a machine.
    pub fn add_busy(&self, node: NodeId, d: Duration) {
        self.nodes[node]
            .busy_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Tracks a task-memory allocation (subtree data, delegate `Ix` sets ...)
    /// and updates the peak watermark.
    pub fn mem_alloc(&self, node: NodeId, bytes: usize) {
        let cur = self.nodes[node]
            .mem_current
            .fetch_add(bytes as u64, Ordering::Relaxed)
            + bytes as u64;
        self.nodes[node].mem_peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Releases tracked task memory.
    pub fn mem_free(&self, node: NodeId, bytes: usize) {
        self.nodes[node]
            .mem_current
            .fetch_sub(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of one machine's counters.
    pub fn snapshot(&self, node: NodeId) -> NodeSnapshot {
        let c = &self.nodes[node];
        NodeSnapshot {
            sent_bytes: c.sent_bytes.load(Ordering::Relaxed),
            recv_bytes: c.recv_bytes.load(Ordering::Relaxed),
            sent_msgs: c.sent_msgs.load(Ordering::Relaxed),
            recv_msgs: c.recv_msgs.load(Ordering::Relaxed),
            busy_ns: c.busy_ns.load(Ordering::Relaxed),
            mem_peak: c.mem_peak.load(Ordering::Relaxed),
        }
    }

    /// Snapshots for every machine.
    pub fn snapshot_all(&self) -> Vec<NodeSnapshot> {
        (0..self.nodes.len()).map(|i| self.snapshot(i)).collect()
    }

    /// Wall-clock time since the stats were created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Average busy CPU percentage of a machine over `elapsed` (can exceed
    /// 100 when several compute threads run — the paper reports e.g. 837%).
    pub fn cpu_percent(&self, node: NodeId, elapsed: Duration) -> f64 {
        let busy = self.nodes[node].busy_ns.load(Ordering::Relaxed) as f64;
        if elapsed.is_zero() {
            return 0.0;
        }
        100.0 * busy / elapsed.as_nanos() as f64
    }

    /// Average send throughput of a machine over `elapsed`, in Mbit/s — the
    /// quantity Table VI reports as "Send".
    pub fn send_mbps(&self, node: NodeId, elapsed: Duration) -> f64 {
        let bytes = self.nodes[node].sent_bytes.load(Ordering::Relaxed) as f64;
        if elapsed.is_zero() {
            return 0.0;
        }
        bytes * 8.0 / 1e6 / elapsed.as_secs_f64()
    }
}

/// A guard that reports its lifetime as busy time on drop. Compute threads
/// wrap each task execution in one of these.
pub struct BusyGuard<'a> {
    stats: &'a NetStats,
    node: NodeId,
    start: Instant,
}

impl<'a> BusyGuard<'a> {
    /// Starts a busy interval for `node`.
    pub fn start(stats: &'a NetStats, node: NodeId) -> Self {
        BusyGuard {
            stats,
            node,
            start: Instant::now(),
        }
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.stats.add_busy(self.node, self.start.elapsed());
    }
}

/// Tuning of the reliable fabric's retransmission machinery. All timers
/// read the fabric's [`SimClock`], so a seeded run's retries replay
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Initial retransmission timeout: how long an unacknowledged frame
    /// waits before its first retry.
    pub rto: Duration,
    /// Cap on the exponential backoff (`rto * 2^attempt`, saturated here).
    pub max_rto: Duration,
    /// Scan granularity of the [`RetryDriver`] thread.
    pub tick: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            rto: Duration::from_millis(10),
            max_rto: Duration::from_millis(160),
            tick: Duration::from_millis(1),
        }
    }
}

impl RetryConfig {
    /// The backoff before retransmission `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        self.rto
            .saturating_mul(1u32 << shift)
            .min(self.max_rto.max(self.rto))
    }
}

/// The frame a fabric channel actually carries.
#[derive(Debug, Clone)]
enum Packet<M> {
    /// A frame outside the reliable protocol: local sends, every send on a
    /// fabric without message faults, and explicitly unreliable sends such
    /// as heartbeats (see [`Fabric::send_unreliable`]).
    Raw(M),
    /// Reliable frame `seq` on the `(from, to)` edge; retransmitted until
    /// acknowledged, delivered to the application exactly once in order.
    Data { from: NodeId, seq: u64, payload: M },
    /// Acknowledges the reliable frame `seq` that the machine receiving
    /// this packet sent to `from` earlier.
    Ack { from: NodeId, seq: u64 },
}

/// Reliable-protocol overhead: an 8-byte sequence header on data frames and
/// a fixed-size ack control frame.
const SEQ_HDR_BYTES: usize = 8;
const ACK_BYTES: usize = 16;

impl<M: WireSized> WireSized for Packet<M> {
    fn wire_bytes(&self) -> usize {
        match self {
            Packet::Raw(m) => m.wire_bytes(),
            Packet::Data { payload, .. } => payload.wire_bytes() + SEQ_HDR_BYTES,
            Packet::Ack { .. } => ACK_BYTES,
        }
    }
}

/// One reliable frame awaiting acknowledgement.
struct InFlight<M> {
    msg: M,
    attempt: u32,
    due_ns: u64,
}

/// Shared state of a reliable fabric: per-edge sequence counters plus the
/// table of unacknowledged frames the [`RetryDriver`] retransmits from.
struct ReliableState<M> {
    n: usize,
    next_seq: Vec<AtomicU64>,
    inflight: Mutex<HashMap<(NodeId, NodeId, u64), InFlight<M>>>,
    cfg: RetryConfig,
}

impl<M> ReliableState<M> {
    fn new(n: usize, cfg: RetryConfig) -> ReliableState<M> {
        ReliableState {
            n,
            next_seq: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            inflight: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    /// Takes the next reliable sequence number of the `(from, to)` edge.
    /// Distinct from [`FaultState`]'s counters, which number *physical*
    /// transmissions: a retransmitted frame keeps its reliable `seq` but
    /// gets a fresh fault decision.
    fn take_seq(&self, from: NodeId, to: NodeId) -> u64 {
        self.next_seq[from * self.n + to].fetch_add(1, Ordering::Relaxed)
    }
}

/// Handle to the background thread that retransmits unacknowledged frames
/// of one reliable fabric. Stops (and joins) on [`RetryDriver::stop`] or
/// drop.
pub struct RetryDriver {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RetryDriver {
    /// Signals the driver thread and waits for it to exit. In-flight frames
    /// are no longer retransmitted afterwards.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RetryDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One typed message plane connecting all machines (the engine instantiates
/// one for task communication and one for data communication, per Fig. 6).
///
/// Cloneable; all clones share channels, stats and the link model.
pub struct Fabric<M> {
    senders: Vec<Sender<Packet<M>>>,
    model: NetModel,
    stats: Arc<NetStats>,
    clock: SimClock,
    faults: Option<Arc<FaultState>>,
    reliable: Option<Arc<ReliableState<M>>>,
    /// Per-sender outbound-delay multipliers from the fault plan's
    /// heterogeneity script (all 1.0 without one). Kept outside
    /// [`FaultState`] so link heterogeneity applies even when the plan has
    /// no message faults (and hence no fault state).
    bw_scale: Arc<Vec<f64>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            senders: self.senders.clone(),
            model: self.model,
            stats: Arc::clone(&self.stats),
            clock: self.clock.clone(),
            faults: self.faults.clone(),
            reliable: self.reliable.clone(),
            bw_scale: Arc::clone(&self.bw_scale),
        }
    }
}

/// Error returned when the destination machine has shut down (its receiver
/// was dropped). The engine treats this as a crashed worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected {
    /// The unreachable machine.
    pub to: NodeId,
}

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine {} is disconnected", self.to)
    }
}

impl std::error::Error for Disconnected {}

impl<M: WireSized + Clone> Fabric<M> {
    /// Creates a fabric over `n` machines sharing `stats`; returns the
    /// cloneable handle plus one receiver per machine.
    pub fn new(
        n: usize,
        model: NetModel,
        stats: Arc<NetStats>,
    ) -> (Fabric<M>, Vec<FabricReceiver<M>>) {
        Self::new_faulty(n, model, stats, None, SimClock::wall())
    }

    /// [`Fabric::new`] plus a fault plan and a time base. Passing
    /// `plan: None` and a wall clock is exactly `new`. The fabric is **raw**:
    /// injected drops really lose messages (no retries) — fabric-level
    /// tests use this; the engine wants [`Fabric::new_reliable`].
    pub fn new_faulty(
        n: usize,
        model: NetModel,
        stats: Arc<NetStats>,
        plan: Option<FaultPlan>,
        clock: SimClock,
    ) -> (Fabric<M>, Vec<FabricReceiver<M>>) {
        Self::build(n, model, stats, plan, clock, None)
    }

    /// A fabric that tolerates its own fault plan: when `plan` enables any
    /// message fault, every remote [`Fabric::send`] becomes a
    /// sequence-numbered frame that is acknowledged by the receiver,
    /// retransmitted with exponential backoff until acked, deduplicated and
    /// reordered back into per-edge FIFO order on delivery. The returned
    /// [`RetryDriver`] (present exactly when the plan has message faults)
    /// owns the retransmission thread and must be kept alive for the
    /// fabric's lifetime.
    ///
    /// Without message faults this is exactly [`Fabric::new_faulty`]: plain
    /// frames, no acks, no overhead.
    pub fn new_reliable(
        n: usize,
        model: NetModel,
        stats: Arc<NetStats>,
        plan: Option<FaultPlan>,
        clock: SimClock,
        retry: RetryConfig,
    ) -> (Fabric<M>, Vec<FabricReceiver<M>>, Option<RetryDriver>)
    where
        M: Send + 'static,
    {
        let reliable = plan.as_ref().is_some_and(|p| p.affects_messages());
        let (fabric, receivers) =
            Self::build(n, model, stats, plan, clock, reliable.then_some(retry));
        let driver = reliable.then(|| fabric.spawn_retry_driver());
        (fabric, receivers, driver)
    }

    fn build(
        n: usize,
        model: NetModel,
        stats: Arc<NetStats>,
        plan: Option<FaultPlan>,
        clock: SimClock,
        retry: Option<RetryConfig>,
    ) -> (Fabric<M>, Vec<FabricReceiver<M>>) {
        assert_eq!(stats.n_nodes(), n, "stats sized for a different cluster");
        let mut senders = Vec::with_capacity(n);
        let mut raw_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            raw_rxs.push(r);
        }
        let bw_scale = Arc::new(
            (0..n)
                .map(|m| plan.as_ref().map_or(1.0, |p| p.bandwidth_scale(m)))
                .collect::<Vec<f64>>(),
        );
        let faults = plan
            .filter(|p| p.affects_messages())
            .map(|p| Arc::new(FaultState::new(p, n)));
        let reliable = retry.map(|cfg| Arc::new(ReliableState::new(n, cfg)));
        let fabric = Fabric {
            senders,
            model,
            stats,
            clock,
            faults,
            reliable,
            bw_scale,
        };
        let receivers = raw_rxs
            .into_iter()
            .enumerate()
            .map(|(node, rx)| FabricReceiver::new(node, n, rx, fabric.clone()))
            .collect();
        (fabric, receivers)
    }

    /// Sends `msg` from `from` to `to`.
    ///
    /// Local sends (`from == to`) are free: no accounting, no pacing —
    /// mirroring the paper's "skipping communication when the requested data
    /// is local". Remote sends charge the counters and sleep the calling
    /// thread per the link model; with a fault plan attached they may also
    /// be dropped, delayed or duplicated (decided purely from the plan's
    /// seed and the message's per-edge sequence number). On a reliable
    /// fabric the frame is additionally tracked until the receiver
    /// acknowledges it, so an injected drop only costs a retransmission.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), Disconnected> {
        if from == to {
            return self.push(to, Packet::Raw(msg));
        }
        match &self.reliable {
            Some(rel) => {
                let seq = rel.take_seq(from, to);
                rel.inflight.lock().insert(
                    (from, to, seq),
                    InFlight {
                        msg: msg.clone(),
                        attempt: 0,
                        due_ns: self.clock.now_ns() + rel.cfg.rto.as_nanos() as u64,
                    },
                );
                let sent = self.transmit(
                    from,
                    to,
                    Packet::Data {
                        from,
                        seq,
                        payload: msg,
                    },
                    true,
                );
                if sent.is_err() {
                    rel.inflight.lock().remove(&(from, to, seq));
                }
                sent
            }
            None => self.transmit(from, to, Packet::Raw(msg), true),
        }
    }

    /// Sends outside the reliable protocol: the message is accounted, paced
    /// and fault-decided like any other, but never acked or retransmitted,
    /// and bypasses the receiver's ordering buffer. This is what heartbeats
    /// want — a lost heartbeat must stay lost (retrying a dead worker's
    /// backlog would defeat the detector), and a heartbeat must not wait
    /// behind buffered out-of-order data frames.
    pub fn send_unreliable(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), Disconnected> {
        if from == to {
            return self.push(to, Packet::Raw(msg));
        }
        self.transmit(from, to, Packet::Raw(msg), true)
    }

    /// Acks are control frames: fault-droppable (the sender then simply
    /// retransmits and gets re-acked) and byte-accounted, but not paced —
    /// pacing models payload serialisation, and charging a 16-byte ack the
    /// full per-message latency would stall the engine's receive threads.
    fn send_ack(&self, from: NodeId, to: NodeId, seq: u64) {
        let _ = self.transmit(from, to, Packet::Ack { from, seq }, false);
    }

    /// One physical transmission attempt: fault decision, accounting,
    /// optional pacing, channel push.
    fn transmit(
        &self,
        from: NodeId,
        to: NodeId,
        pkt: Packet<M>,
        pace: bool,
    ) -> Result<(), Disconnected> {
        let mut copies = 1;
        if let Some(faults) = &self.faults {
            let seq = faults.next_seq(from, to);
            match faults.plan.decide(from, to, seq) {
                FaultDecision::Deliver => {}
                FaultDecision::Drop => {
                    #[cfg(feature = "obs")]
                    if let Some(rec) = self.stats.recorder() {
                        rec.record(
                            from as u32,
                            ts_obs::Event::MessageDropped {
                                from: from as u32,
                                to: to as u32,
                                seq,
                            },
                        );
                    }
                    // The message is lost in transit: the sender still
                    // paid for it, the receiver never sees it.
                    self.stats.record_send(from, to, pkt.wire_bytes());
                    return Ok(());
                }
                FaultDecision::Delay(extra) => {
                    #[cfg(feature = "obs")]
                    if let Some(rec) = self.stats.recorder() {
                        rec.record(
                            from as u32,
                            ts_obs::Event::MessageDelayed {
                                from: from as u32,
                                to: to as u32,
                                seq,
                                delay_ns: extra.as_nanos() as u64,
                            },
                        );
                    }
                    self.clock.sleep(extra);
                }
                FaultDecision::Duplicate => copies = 2,
            }
        }
        let bytes = pkt.wire_bytes();
        for copy in 0..copies {
            self.stats.record_send(from, to, bytes);
            if pace {
                let mut delay = self.model.delay_for(bytes);
                // Link heterogeneity: a machine with a scripted bandwidth
                // scale serialises its outbound traffic that much slower
                // (or faster) than the uniform link model.
                let scale = self.bw_scale.get(from).copied().unwrap_or(1.0);
                if scale != 1.0 {
                    delay = delay.mul_f64(scale);
                }
                if !delay.is_zero() {
                    self.clock.sleep(delay);
                }
            }
            let frame = if copy + 1 < copies {
                pkt.clone()
            } else {
                // Last copy moves the original; `break` keeps the borrow
                // checker happy about using `pkt` after this.
                return self.push(to, pkt);
            };
            self.push(to, frame)?;
        }
        Ok(())
    }

    fn push(&self, to: NodeId, pkt: Packet<M>) -> Result<(), Disconnected> {
        self.senders[to].send(pkt).map_err(|_| Disconnected { to })
    }

    /// Spawns the thread that retransmits overdue in-flight frames.
    fn spawn_retry_driver(&self) -> RetryDriver
    where
        M: Send + 'static,
    {
        let fabric = self.clone();
        let tick = self
            .reliable
            .as_ref()
            .expect("retry driver needs a reliable fabric")
            .cfg
            .tick;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fabric-retry".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    fabric.retransmit_due();
                }
            })
            .expect("spawn fabric-retry");
        RetryDriver {
            stop,
            handle: Some(handle),
        }
    }

    /// Retransmits every in-flight frame whose timer expired, bumping its
    /// attempt count and pushing its next deadline out exponentially.
    fn retransmit_due(&self) {
        let Some(rel) = &self.reliable else { return };
        let now = self.clock.now_ns();
        let mut due = Vec::new();
        {
            let mut table = rel.inflight.lock();
            for (&(from, to, seq), entry) in table.iter_mut() {
                if entry.due_ns <= now {
                    entry.attempt += 1;
                    entry.due_ns = now + rel.cfg.backoff(entry.attempt).as_nanos() as u64;
                    due.push((from, to, seq, entry.msg.clone(), entry.attempt));
                }
            }
        }
        // HashMap iteration order is run-dependent; emit in edge/seq order
        // so a seeded replay sees the same retransmission sequence.
        due.sort_by_key(|&(from, to, seq, _, _)| (from, to, seq));
        for (from, to, seq, msg, attempt) in due {
            #[cfg(feature = "obs")]
            if let Some(rec) = self.stats.recorder() {
                rec.record(
                    from as u32,
                    ts_obs::Event::RetrySent {
                        from: from as u32,
                        to: to as u32,
                        seq,
                        attempt,
                        // A retransmission stays attributed to the span of
                        // the payload it re-carries.
                        span: msg.trace_ctx().span.0,
                    },
                );
            }
            #[cfg(not(feature = "obs"))]
            let _ = attempt;
            let frame = Packet::Data {
                from,
                seq,
                payload: msg,
            };
            if self.transmit(from, to, frame, true).is_err() {
                // The destination shut down; nothing will ever ack this.
                rel.inflight.lock().remove(&(from, to, seq));
            }
        }
    }

    /// Drops every in-flight frame addressed to `to`. The engine calls this
    /// when it declares a machine dead, so the retry driver stops
    /// retransmitting into the void.
    pub fn forget_destination(&self, to: NodeId) {
        if let Some(rel) = &self.reliable {
            rel.inflight.lock().retain(|&(_, t, _), _| t != to);
        }
    }

    /// Number of reliable frames currently awaiting acknowledgement
    /// (0 on a raw fabric).
    pub fn inflight_frames(&self) -> usize {
        self.reliable
            .as_ref()
            .map_or(0, |rel| rel.inflight.lock().len())
    }

    /// The fabric's time base.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The attached fault plan, if any message faults are enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| &f.plan)
    }

    /// The shared statistics.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The link model.
    pub fn model(&self) -> NetModel {
        self.model
    }
}

/// Per-sender reassembly state of one receiving machine.
struct EdgeRecv<M> {
    /// The next reliable sequence number to release to the application.
    next_expected: u64,
    /// Frames that arrived ahead of `next_expected` (retransmission races,
    /// injected reorderings), held until the gap fills.
    pending: BTreeMap<u64, M>,
}

struct RecvState<M> {
    /// Messages ready for the application, in delivery order.
    ready: VecDeque<M>,
    /// Reassembly state per sending machine.
    edges: Vec<EdgeRecv<M>>,
}

/// The receiving end of one machine's fabric channel.
///
/// On a raw fabric this is a thin pass-through. On a reliable fabric it
/// acknowledges every data frame (including re-received ones — the previous
/// ack may itself have been dropped), discards duplicates, and buffers
/// out-of-order frames so the application observes each edge's messages
/// exactly once, in send order.
pub struct FabricReceiver<M> {
    node: NodeId,
    rx: Receiver<Packet<M>>,
    fabric: Fabric<M>,
    state: Mutex<RecvState<M>>,
}

impl<M: WireSized + Clone> FabricReceiver<M> {
    fn new(node: NodeId, n: usize, rx: Receiver<Packet<M>>, fabric: Fabric<M>) -> Self {
        FabricReceiver {
            node,
            rx,
            fabric,
            state: Mutex::new(RecvState {
                ready: VecDeque::new(),
                edges: (0..n)
                    .map(|_| EdgeRecv {
                        next_expected: 0,
                        pending: BTreeMap::new(),
                    })
                    .collect(),
            }),
        }
    }

    /// The machine this receiver belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Takes the next application message, blocking while none is ready.
    pub fn recv(&self) -> Result<M, RecvError> {
        loop {
            if let Some(m) = self.state.lock().ready.pop_front() {
                return Ok(m);
            }
            let pkt = self.rx.recv()?;
            self.process(pkt);
        }
    }

    /// Takes the next application message if one can be produced without
    /// blocking.
    pub fn try_recv(&self) -> Option<M> {
        loop {
            if let Some(m) = self.state.lock().ready.pop_front() {
                return Some(m);
            }
            let pkt = self.rx.try_iter().next()?;
            self.process(pkt);
        }
    }

    /// Drains currently-deliverable messages without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = M> + '_ {
        std::iter::from_fn(move || self.try_recv())
    }

    fn process(&self, pkt: Packet<M>) {
        match pkt {
            Packet::Raw(m) => self.state.lock().ready.push_back(m),
            Packet::Data { from, seq, payload } => {
                // Ack unconditionally: for a re-received frame the original
                // ack may have been lost in transit.
                self.fabric.send_ack(self.node, from, seq);
                let mut st = self.state.lock();
                let RecvState { ready, edges } = &mut *st;
                let edge = &mut edges[from];
                if seq < edge.next_expected {
                    self.note_duplicate(from, seq, payload.trace_ctx().span.0);
                } else if seq == edge.next_expected {
                    edge.next_expected += 1;
                    ready.push_back(payload);
                    while let Some(next) = edge.pending.remove(&edge.next_expected) {
                        edge.next_expected += 1;
                        ready.push_back(next);
                    }
                } else if let Some(old) = edge.pending.insert(seq, payload) {
                    // Same (from, seq) => same frame => same span.
                    self.note_duplicate(from, seq, old.trace_ctx().span.0);
                }
            }
            Packet::Ack { from, seq } => {
                if let Some(rel) = &self.fabric.reliable {
                    rel.inflight.lock().remove(&(self.node, from, seq));
                }
            }
        }
    }

    #[cfg_attr(not(feature = "obs"), allow(unused_variables))]
    fn note_duplicate(&self, from: NodeId, seq: u64, span: u64) {
        #[cfg(feature = "obs")]
        if let Some(rec) = self.fabric.stats.recorder() {
            rec.record(
                self.node as u32,
                ts_obs::Event::DupDropped {
                    node: self.node as u32,
                    from: from as u32,
                    seq,
                    span,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(Vec<u8>);

    impl WireSized for Msg {
        fn wire_bytes(&self) -> usize {
            self.0.len()
        }
    }

    fn setup(n: usize, model: NetModel) -> (Fabric<Msg>, Vec<FabricReceiver<Msg>>, Arc<NetStats>) {
        let stats = NetStats::new(n);
        let (f, r) = Fabric::new(n, model, Arc::clone(&stats));
        (f, r, stats)
    }

    #[test]
    fn send_delivers_and_accounts() {
        let (f, r, stats) = setup(3, NetModel::instant());
        f.send(0, 2, Msg(vec![0; 100])).unwrap();
        assert_eq!(r[2].recv().unwrap(), Msg(vec![0; 100]));
        let s0 = stats.snapshot(0);
        let s2 = stats.snapshot(2);
        assert_eq!(s0.sent_bytes, 100);
        assert_eq!(s0.sent_msgs, 1);
        assert_eq!(s2.recv_bytes, 100);
        assert_eq!(s2.recv_msgs, 1);
        assert_eq!(stats.snapshot(1), NodeSnapshot::default());
    }

    #[test]
    fn local_send_is_free() {
        let (f, r, stats) = setup(2, NetModel::gige());
        let t = Instant::now();
        f.send(1, 1, Msg(vec![0; 1_000_000])).unwrap();
        assert!(
            t.elapsed() < Duration::from_millis(50),
            "local send must not pace"
        );
        assert_eq!(stats.snapshot(1).sent_bytes, 0);
        assert_eq!(r[1].recv().unwrap().0.len(), 1_000_000);
    }

    #[test]
    fn bandwidth_model_paces_sender() {
        // 1 MB at 10 MB/s => >= 100 ms.
        let model = NetModel::slow(10_000_000.0, Duration::ZERO);
        let (f, _r, _stats) = setup(2, model);
        let t = Instant::now();
        f.send(0, 1, Msg(vec![0; 1_000_000])).unwrap();
        assert!(
            t.elapsed() >= Duration::from_millis(95),
            "took {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn bandwidth_scale_slows_one_senders_link() {
        // 100 KB at 10 MB/s is 10 ms; node 0's link is scripted 4x slower.
        let model = NetModel::slow(10_000_000.0, Duration::ZERO);
        let stats = NetStats::new(2);
        let plan = FaultPlan::new(1).with_bandwidth_scale(0, 4.0);
        let clock = SimClock::virtual_at(0);
        let (f, _r) = Fabric::<Msg>::new_faulty(2, model, stats, Some(plan), clock.clone());
        f.send(0, 1, Msg(vec![0; 100_000])).unwrap();
        let scaled = clock.now_ns();
        assert!(
            (35_000_000..=45_000_000).contains(&scaled),
            "4x-scaled 10 ms transfer took {scaled} ns"
        );
        f.send(1, 0, Msg(vec![0; 100_000])).unwrap();
        let unscaled = clock.now_ns() - scaled;
        assert!(
            (8_000_000..=12_000_000).contains(&unscaled),
            "unscripted sender keeps the uniform link, took {unscaled} ns"
        );
    }

    #[test]
    fn latency_applies_per_message() {
        let model = NetModel::slow(f64::INFINITY, Duration::from_millis(10));
        let (f, _r, _stats) = setup(2, model);
        let t = Instant::now();
        for _ in 0..3 {
            f.send(0, 1, Msg(vec![0; 1])).unwrap();
        }
        assert!(t.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn disconnected_receiver_reports_error() {
        let (f, r, _stats) = setup(2, NetModel::instant());
        drop(r.into_iter().nth(1));
        let err = f.send(0, 1, Msg(vec![1])).unwrap_err();
        assert_eq!(err, Disconnected { to: 1 });
    }

    #[test]
    fn busy_guard_accumulates() {
        let stats = NetStats::new(1);
        {
            let _g = BusyGuard::start(&stats, 0);
            std::thread::sleep(Duration::from_millis(20));
        }
        let busy = stats.snapshot(0).busy_ns;
        assert!(busy >= 15_000_000, "busy {busy} ns");
        let pct = stats.cpu_percent(0, Duration::from_millis(40));
        assert!(pct > 25.0, "cpu% {pct}");
    }

    #[test]
    fn memory_watermark_tracks_peak() {
        let stats = NetStats::new(1);
        stats.mem_alloc(0, 100);
        stats.mem_alloc(0, 200);
        stats.mem_free(0, 100);
        stats.mem_alloc(0, 50);
        let snap = stats.snapshot(0);
        assert_eq!(snap.mem_peak, 300);
    }

    #[test]
    fn send_mbps_is_computed_from_bytes() {
        let (f, _r, stats) = setup(2, NetModel::instant());
        f.send(0, 1, Msg(vec![0; 1_000_000])).unwrap();
        let mbps = stats.send_mbps(0, Duration::from_secs(1));
        assert!((mbps - 8.0).abs() < 1e-9, "1 MB/s = 8 Mbps, got {mbps}");
    }

    #[test]
    fn record_send_charges_both_endpoints_symmetrically() {
        let stats = NetStats::new(3);
        stats.record_send(0, 2, 100);
        stats.record_send(0, 2, 50);
        stats.record_send(2, 0, 25);
        let s0 = stats.snapshot(0);
        let s2 = stats.snapshot(2);
        assert_eq!(s0.sent_bytes, 150);
        assert_eq!(s0.sent_msgs, 2);
        assert_eq!(s0.recv_bytes, 25);
        assert_eq!(s0.recv_msgs, 1);
        assert_eq!(s2.recv_bytes, s0.sent_bytes);
        assert_eq!(s2.recv_msgs, s0.sent_msgs);
        assert_eq!(s2.sent_bytes, s0.recv_bytes);
        assert_eq!(stats.snapshot(1), NodeSnapshot::default());
    }

    #[test]
    fn mem_peak_is_a_true_watermark() {
        let stats = NetStats::new(1);
        stats.mem_alloc(0, 1000);
        stats.mem_free(0, 1000);
        // Re-allocating less than the old peak must not move it.
        stats.mem_alloc(0, 10);
        assert_eq!(stats.snapshot(0).mem_peak, 1000);
        // Exceeding it must.
        stats.mem_alloc(0, 2000);
        assert_eq!(stats.snapshot(0).mem_peak, 2010);
    }

    #[test]
    fn rates_at_zero_elapsed_are_zero_not_nan() {
        let stats = NetStats::new(1);
        stats.add_busy(0, Duration::from_secs(1));
        stats.record_send(0, 0, 0); // self-accounting is allowed directly
        let cpu = stats.cpu_percent(0, Duration::ZERO);
        let mbps = stats.send_mbps(0, Duration::ZERO);
        assert_eq!(cpu, 0.0, "cpu_percent at zero elapsed must be 0, got {cpu}");
        assert_eq!(mbps, 0.0, "send_mbps at zero elapsed must be 0, got {mbps}");
        assert!(cpu.is_finite() && mbps.is_finite());
    }

    #[test]
    fn node_snapshot_display_uses_paper_units() {
        let snap = NodeSnapshot {
            sent_bytes: 2_500_000,
            recv_bytes: 1_000_000,
            sent_msgs: 10,
            recv_msgs: 4,
            busy_ns: 1_500_000_000,
            mem_peak: 3_000_000,
        };
        let s = snap.to_string();
        assert!(s.contains("2.50 MB"), "{s}");
        assert!(s.contains("1.50 s"), "{s}");
        assert!(s.contains("3.00 MB"), "{s}");
    }

    #[test]
    fn concurrent_sends_from_many_threads() {
        let (f, r, stats) = setup(4, NetModel::instant());
        let mut handles = Vec::new();
        for from in 0..4usize {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    f.send(from, (from + 1) % 4, Msg(vec![0; i])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total_recv: usize = (0..4).map(|i| r[i].try_iter().count()).sum();
        assert_eq!(total_recv, 400);
        let sent: u64 = (0..4).map(|i| stats.snapshot(i).sent_msgs).sum();
        assert_eq!(sent, 400);
    }

    #[test]
    fn delay_for_combines_latency_and_bandwidth() {
        let m = NetModel::slow(1000.0, Duration::from_millis(5));
        let d = m.delay_for(1000);
        assert_eq!(d, Duration::from_millis(1005));
        assert_eq!(NetModel::instant().delay_for(1 << 30), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "stats sized")]
    fn mismatched_stats_size_panics() {
        let stats = NetStats::new(2);
        let _ = Fabric::<Msg>::new(3, NetModel::instant(), stats);
    }

    /// A reliable fabric setup with a fast retry clock for tests.
    fn reliable(
        n: usize,
        plan: FaultPlan,
    ) -> (
        Fabric<Msg>,
        Vec<FabricReceiver<Msg>>,
        Option<RetryDriver>,
        Arc<NetStats>,
    ) {
        let stats = NetStats::new(n);
        let retry = RetryConfig {
            rto: Duration::from_millis(2),
            max_rto: Duration::from_millis(20),
            tick: Duration::from_millis(1),
        };
        let (f, r, d) = Fabric::new_reliable(
            n,
            NetModel::instant(),
            Arc::clone(&stats),
            Some(plan),
            SimClock::wall(),
            retry,
        );
        (f, r, d, stats)
    }

    /// Drains `want` messages from `rx`, waiting out retransmission gaps.
    fn drain(rx: &FabricReceiver<Msg>, want: usize) -> Vec<Msg> {
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut got = Vec::new();
        while got.len() < want {
            match rx.try_recv() {
                Some(m) => got.push(m),
                None => {
                    assert!(Instant::now() < deadline, "only {} of {want}", got.len());
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        got
    }

    #[test]
    fn reliable_fabric_recovers_dropped_messages_in_order() {
        let plan = FaultPlan::new(0xD0D0).with_message_drops(0.3);
        let (f, r, driver, _stats) = reliable(2, plan);
        let n = 200;
        for i in 0..n {
            f.send(0, 1, Msg(vec![i as u8])).unwrap();
        }
        let got = drain(&r[1], n);
        let expect: Vec<Msg> = (0..n).map(|i| Msg(vec![i as u8])).collect();
        assert_eq!(got, expect, "every message exactly once, in send order");
        // Acks flow back to node 0's receiver, and node 1 must keep
        // re-acking retransmits whose acks were dropped; once both sides
        // are serviced, the in-flight table drains and retransmission stops.
        let deadline = Instant::now() + Duration::from_secs(20);
        while f.inflight_frames() > 0 {
            let _ = r[0].try_recv();
            let _ = r[1].try_recv();
            assert!(
                Instant::now() < deadline,
                "{} frames stuck",
                f.inflight_frames()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        driver.unwrap().stop();
        assert!(r[1].try_recv().is_none(), "no stray deliveries");
    }

    #[test]
    fn reliable_fabric_dedups_duplicates() {
        let plan = FaultPlan::new(0xDDDD).with_message_duplicates(0.5);
        let (f, r, driver, stats) = reliable(2, plan);
        let n = 100;
        for i in 0..n {
            f.send(0, 1, Msg(vec![i as u8; 2])).unwrap();
        }
        let got = drain(&r[1], n);
        assert_eq!(got.len(), n);
        assert!(got.iter().enumerate().all(|(i, m)| m.0[0] as usize == i));
        assert!(r[1].try_recv().is_none(), "duplicates must not surface");
        // Duplicates were really transmitted: more sends accounted than
        // logical messages (n data frames + dups; acks land on node 1).
        assert!(stats.snapshot(0).sent_msgs > n as u64);
        driver.unwrap().stop();
    }

    #[test]
    fn fault_free_reliable_request_is_a_raw_fabric() {
        // No message faults => new_reliable degrades to the raw fast path:
        // no driver thread, no acks, no per-frame overhead.
        let stats = NetStats::new(2);
        let (f, r, driver) = Fabric::<Msg>::new_reliable(
            2,
            NetModel::instant(),
            Arc::clone(&stats),
            Some(FaultPlan::new(7).with_crash_at_delegation(1)),
            SimClock::wall(),
            RetryConfig::default(),
        );
        assert!(driver.is_none());
        f.send(0, 1, Msg(vec![0; 64])).unwrap();
        assert_eq!(r[1].recv().unwrap().0.len(), 64);
        assert_eq!(stats.snapshot(0).sent_bytes, 64, "no seq header added");
        assert_eq!(f.inflight_frames(), 0);
    }

    #[test]
    fn forget_destination_clears_inflight() {
        let plan = FaultPlan::new(3).with_message_drops(1.0);
        let (f, _r, driver, _stats) = reliable(3, plan);
        // Everything drops, so frames stay in flight until forgotten.
        f.send(0, 1, Msg(vec![1])).unwrap();
        f.send(0, 2, Msg(vec![2])).unwrap();
        assert_eq!(f.inflight_frames(), 2);
        f.forget_destination(1);
        assert_eq!(f.inflight_frames(), 1);
        f.forget_destination(2);
        assert_eq!(f.inflight_frames(), 0);
        driver.unwrap().stop();
    }

    #[test]
    fn unreliable_sends_bypass_the_protocol() {
        let plan = FaultPlan::new(11).with_message_drops(1.0);
        let (f, r, driver, _stats) = reliable(2, plan);
        // A heartbeat-style send on an all-drop plan is simply gone: no
        // in-flight entry, no retransmission.
        f.send_unreliable(0, 1, Msg(vec![9])).unwrap();
        assert_eq!(f.inflight_frames(), 0);
        std::thread::sleep(Duration::from_millis(10));
        assert!(r[1].try_recv().is_none());
        driver.unwrap().stop();
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let cfg = RetryConfig {
            rto: Duration::from_millis(10),
            max_rto: Duration::from_millis(160),
            tick: Duration::from_millis(1),
        };
        assert_eq!(cfg.backoff(1), Duration::from_millis(10));
        assert_eq!(cfg.backoff(2), Duration::from_millis(20));
        assert_eq!(cfg.backoff(5), Duration::from_millis(160));
        assert_eq!(cfg.backoff(40), Duration::from_millis(160), "saturates");
    }
}
