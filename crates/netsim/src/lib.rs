//! In-process cluster simulation.
//!
//! The paper evaluates TreeServer on a 15-machine cluster with 1 GigE
//! links. This crate substitutes an in-process simulation (see DESIGN.md §2):
//! every "machine" is a set of real OS threads, machines exchange typed
//! messages over [`tschan`] channels, and every send is
//!
//! 1. **accounted** — payload bytes are charged to the sender's Send counter
//!    and the receiver's Recv counter (giving the paper's per-machine
//!    Send/Recv workload and Mbps figures), and
//! 2. **paced** — an optional [`NetModel`] sleeps the sending thread for
//!    `latency + bytes / bandwidth`, which serialises a machine's outbound
//!    traffic exactly like a shared NIC does. This is what recreates the
//!    master-outbound bottleneck of §V and the send-throughput saturation of
//!    Table VI at laptop scale.
//!
//! The paper's two channel types ("Task Comm." master↔workers and "Data
//! Comm." worker↔worker, Fig. 6) map to two [`Fabric`] instances sharing one
//! [`NetStats`].
//!
//! [`NetStats`] also aggregates per-machine *busy time* reported by compute
//! threads, from which the experiments derive the paper's "average CPU rate"
//! (e.g. 837% = 8.37 cores busy).

mod fault;

pub use fault::{FaultDecision, FaultPlan, SimClock};

use fault::FaultState;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tschan::{unbounded, Receiver, Sender};

/// Identifies a machine in the simulated cluster. The engine uses `0` for
/// the master and `1..=w` for workers.
pub type NodeId = usize;

/// A message with a known payload size, so the fabric can account and pace it.
pub trait WireSized {
    /// Approximate serialized size in bytes.
    fn wire_bytes(&self) -> usize;
}

/// The link model applied to every non-local send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Link bandwidth in bytes/second; `None` disables the bandwidth sleep.
    pub bandwidth_bytes_per_sec: Option<f64>,
    /// Fixed per-message latency.
    pub latency: Duration,
}

impl NetModel {
    /// No pacing at all: accounting only. Unit tests use this.
    pub fn instant() -> NetModel {
        NetModel {
            bandwidth_bytes_per_sec: None,
            latency: Duration::ZERO,
        }
    }

    /// The paper's testbed link: 1 GigE (~125 MB/s) with a small fixed
    /// per-message latency.
    pub fn gige() -> NetModel {
        NetModel {
            bandwidth_bytes_per_sec: Some(125_000_000.0),
            latency: Duration::from_micros(200),
        }
    }

    /// A deliberately slow link for tests that need visible contention.
    pub fn slow(bytes_per_sec: f64, latency: Duration) -> NetModel {
        NetModel {
            bandwidth_bytes_per_sec: Some(bytes_per_sec),
            latency,
        }
    }

    /// The transmission delay this model assigns to a payload.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        let bw = match self.bandwidth_bytes_per_sec {
            Some(b) if b > 0.0 && b.is_finite() => Duration::from_secs_f64(bytes as f64 / b),
            _ => Duration::ZERO,
        };
        self.latency + bw
    }
}

/// Per-machine counters, shared across fabrics.
#[derive(Debug)]
struct NodeCounters {
    sent_bytes: AtomicU64,
    recv_bytes: AtomicU64,
    sent_msgs: AtomicU64,
    recv_msgs: AtomicU64,
    busy_ns: AtomicU64,
    mem_current: AtomicU64,
    mem_peak: AtomicU64,
}

impl NodeCounters {
    fn new() -> Self {
        NodeCounters {
            sent_bytes: AtomicU64::new(0),
            recv_bytes: AtomicU64::new(0),
            sent_msgs: AtomicU64::new(0),
            recv_msgs: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            mem_current: AtomicU64::new(0),
            mem_peak: AtomicU64::new(0),
        }
    }
}

/// A point-in-time snapshot of one machine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, tsjson::Serialize)]
pub struct NodeSnapshot {
    /// Total payload bytes sent.
    pub sent_bytes: u64,
    /// Total payload bytes received.
    pub recv_bytes: u64,
    /// Messages sent.
    pub sent_msgs: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Nanoseconds of compute-thread busy time.
    pub busy_ns: u64,
    /// Peak tracked task memory in bytes.
    pub mem_peak: u64,
}

impl std::fmt::Display for NodeSnapshot {
    /// Paper units: megabytes for traffic and memory, seconds for busy time.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent {:>9.2} MB ({:>6} msgs)  recv {:>9.2} MB ({:>6} msgs)  busy {:>7.2} s  peak mem {:>8.2} MB",
            self.sent_bytes as f64 / 1e6,
            self.sent_msgs,
            self.recv_bytes as f64 / 1e6,
            self.recv_msgs,
            self.busy_ns as f64 / 1e9,
            self.mem_peak as f64 / 1e6,
        )
    }
}

/// Cluster-wide statistics: communication counters, compute busy time and
/// task-memory watermarks per machine.
#[derive(Debug)]
pub struct NetStats {
    nodes: Vec<NodeCounters>,
    started: Instant,
    /// The attached event recorder, set once by whoever launches the
    /// cluster. Living on `NetStats` lets every engine thread reach it
    /// without new constructor parameters: they all already share the stats.
    #[cfg(feature = "obs")]
    recorder: std::sync::OnceLock<Arc<ts_obs::Recorder>>,
}

impl NetStats {
    /// Creates statistics for `n` machines.
    pub fn new(n: usize) -> Arc<NetStats> {
        Arc::new(NetStats {
            nodes: (0..n).map(|_| NodeCounters::new()).collect(),
            started: Instant::now(),
            #[cfg(feature = "obs")]
            recorder: std::sync::OnceLock::new(),
        })
    }

    /// Attaches an event recorder. Later calls are ignored (first one wins).
    #[cfg(feature = "obs")]
    pub fn set_recorder(&self, rec: Arc<ts_obs::Recorder>) {
        let _ = self.recorder.set(rec);
    }

    /// The attached event recorder, if any.
    #[cfg(feature = "obs")]
    pub fn recorder(&self) -> Option<&Arc<ts_obs::Recorder>> {
        self.recorder.get()
    }

    /// Number of machines tracked.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Records a message of `bytes` from `from` to `to`.
    pub fn record_send(&self, from: NodeId, to: NodeId, bytes: usize) {
        self.nodes[from]
            .sent_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.nodes[from].sent_msgs.fetch_add(1, Ordering::Relaxed);
        self.nodes[to]
            .recv_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.nodes[to].recv_msgs.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        if let Some(rec) = self.recorder.get() {
            rec.on_net_send(from as u32, to as u32, bytes as u64);
        }
    }

    /// Adds compute busy time for a machine.
    pub fn add_busy(&self, node: NodeId, d: Duration) {
        self.nodes[node]
            .busy_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Tracks a task-memory allocation (subtree data, delegate `Ix` sets ...)
    /// and updates the peak watermark.
    pub fn mem_alloc(&self, node: NodeId, bytes: usize) {
        let cur = self.nodes[node]
            .mem_current
            .fetch_add(bytes as u64, Ordering::Relaxed)
            + bytes as u64;
        self.nodes[node].mem_peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Releases tracked task memory.
    pub fn mem_free(&self, node: NodeId, bytes: usize) {
        self.nodes[node]
            .mem_current
            .fetch_sub(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of one machine's counters.
    pub fn snapshot(&self, node: NodeId) -> NodeSnapshot {
        let c = &self.nodes[node];
        NodeSnapshot {
            sent_bytes: c.sent_bytes.load(Ordering::Relaxed),
            recv_bytes: c.recv_bytes.load(Ordering::Relaxed),
            sent_msgs: c.sent_msgs.load(Ordering::Relaxed),
            recv_msgs: c.recv_msgs.load(Ordering::Relaxed),
            busy_ns: c.busy_ns.load(Ordering::Relaxed),
            mem_peak: c.mem_peak.load(Ordering::Relaxed),
        }
    }

    /// Snapshots for every machine.
    pub fn snapshot_all(&self) -> Vec<NodeSnapshot> {
        (0..self.nodes.len()).map(|i| self.snapshot(i)).collect()
    }

    /// Wall-clock time since the stats were created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Average busy CPU percentage of a machine over `elapsed` (can exceed
    /// 100 when several compute threads run — the paper reports e.g. 837%).
    pub fn cpu_percent(&self, node: NodeId, elapsed: Duration) -> f64 {
        let busy = self.nodes[node].busy_ns.load(Ordering::Relaxed) as f64;
        if elapsed.is_zero() {
            return 0.0;
        }
        100.0 * busy / elapsed.as_nanos() as f64
    }

    /// Average send throughput of a machine over `elapsed`, in Mbit/s — the
    /// quantity Table VI reports as "Send".
    pub fn send_mbps(&self, node: NodeId, elapsed: Duration) -> f64 {
        let bytes = self.nodes[node].sent_bytes.load(Ordering::Relaxed) as f64;
        if elapsed.is_zero() {
            return 0.0;
        }
        bytes * 8.0 / 1e6 / elapsed.as_secs_f64()
    }
}

/// A guard that reports its lifetime as busy time on drop. Compute threads
/// wrap each task execution in one of these.
pub struct BusyGuard<'a> {
    stats: &'a NetStats,
    node: NodeId,
    start: Instant,
}

impl<'a> BusyGuard<'a> {
    /// Starts a busy interval for `node`.
    pub fn start(stats: &'a NetStats, node: NodeId) -> Self {
        BusyGuard {
            stats,
            node,
            start: Instant::now(),
        }
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.stats.add_busy(self.node, self.start.elapsed());
    }
}

/// One typed message plane connecting all machines (the engine instantiates
/// one for task communication and one for data communication, per Fig. 6).
///
/// Cloneable; all clones share channels, stats and the link model.
pub struct Fabric<M> {
    senders: Vec<Sender<M>>,
    model: NetModel,
    stats: Arc<NetStats>,
    clock: SimClock,
    faults: Option<Arc<FaultState>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            senders: self.senders.clone(),
            model: self.model,
            stats: Arc::clone(&self.stats),
            clock: self.clock.clone(),
            faults: self.faults.clone(),
        }
    }
}

/// Error returned when the destination machine has shut down (its receiver
/// was dropped). The engine treats this as a crashed worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected {
    /// The unreachable machine.
    pub to: NodeId,
}

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine {} is disconnected", self.to)
    }
}

impl std::error::Error for Disconnected {}

impl<M: WireSized> Fabric<M> {
    /// Creates a fabric over `n` machines sharing `stats`; returns the
    /// cloneable handle plus one receiver per machine.
    pub fn new(n: usize, model: NetModel, stats: Arc<NetStats>) -> (Fabric<M>, Vec<Receiver<M>>) {
        Self::new_faulty(n, model, stats, None, SimClock::wall())
    }

    /// [`Fabric::new`] plus a fault plan and a time base. Passing
    /// `plan: None` and a wall clock is exactly `new`.
    pub fn new_faulty(
        n: usize,
        model: NetModel,
        stats: Arc<NetStats>,
        plan: Option<FaultPlan>,
        clock: SimClock,
    ) -> (Fabric<M>, Vec<Receiver<M>>) {
        assert_eq!(stats.n_nodes(), n, "stats sized for a different cluster");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let faults = plan
            .filter(|p| p.affects_messages())
            .map(|p| Arc::new(FaultState::new(p, n)));
        (
            Fabric {
                senders,
                model,
                stats,
                clock,
                faults,
            },
            receivers,
        )
    }

    /// Sends `msg` from `from` to `to`.
    ///
    /// Local sends (`from == to`) are free: no accounting, no pacing —
    /// mirroring the paper's "skipping communication when the requested data
    /// is local". Remote sends charge the counters and sleep the calling
    /// thread per the link model; with a fault plan attached they may also
    /// be dropped or delayed (decided purely from the plan's seed and the
    /// message's per-edge sequence number).
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), Disconnected> {
        if from != to {
            if let Some(faults) = &self.faults {
                let seq = faults.next_seq(from, to);
                match faults.plan.decide(from, to, seq) {
                    FaultDecision::Deliver => {}
                    FaultDecision::Drop => {
                        #[cfg(feature = "obs")]
                        if let Some(rec) = self.stats.recorder() {
                            rec.record(
                                from as u32,
                                ts_obs::Event::MessageDropped {
                                    from: from as u32,
                                    to: to as u32,
                                    seq,
                                },
                            );
                        }
                        // The message is lost in transit: the sender still
                        // paid for it, the receiver never sees it.
                        self.stats.record_send(from, to, msg.wire_bytes());
                        return Ok(());
                    }
                    FaultDecision::Delay(extra) => {
                        #[cfg(feature = "obs")]
                        if let Some(rec) = self.stats.recorder() {
                            rec.record(
                                from as u32,
                                ts_obs::Event::MessageDelayed {
                                    from: from as u32,
                                    to: to as u32,
                                    seq,
                                    delay_ns: extra.as_nanos() as u64,
                                },
                            );
                        }
                        self.clock.sleep(extra);
                    }
                }
            }
            let bytes = msg.wire_bytes();
            self.stats.record_send(from, to, bytes);
            let delay = self.model.delay_for(bytes);
            if !delay.is_zero() {
                self.clock.sleep(delay);
            }
        }
        self.senders[to].send(msg).map_err(|_| Disconnected { to })
    }

    /// The fabric's time base.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The attached fault plan, if any message faults are enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| &f.plan)
    }

    /// The shared statistics.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The link model.
    pub fn model(&self) -> NetModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Msg(Vec<u8>);

    impl WireSized for Msg {
        fn wire_bytes(&self) -> usize {
            self.0.len()
        }
    }

    fn setup(n: usize, model: NetModel) -> (Fabric<Msg>, Vec<Receiver<Msg>>, Arc<NetStats>) {
        let stats = NetStats::new(n);
        let (f, r) = Fabric::new(n, model, Arc::clone(&stats));
        (f, r, stats)
    }

    #[test]
    fn send_delivers_and_accounts() {
        let (f, r, stats) = setup(3, NetModel::instant());
        f.send(0, 2, Msg(vec![0; 100])).unwrap();
        assert_eq!(r[2].recv().unwrap(), Msg(vec![0; 100]));
        let s0 = stats.snapshot(0);
        let s2 = stats.snapshot(2);
        assert_eq!(s0.sent_bytes, 100);
        assert_eq!(s0.sent_msgs, 1);
        assert_eq!(s2.recv_bytes, 100);
        assert_eq!(s2.recv_msgs, 1);
        assert_eq!(stats.snapshot(1), NodeSnapshot::default());
    }

    #[test]
    fn local_send_is_free() {
        let (f, r, stats) = setup(2, NetModel::gige());
        let t = Instant::now();
        f.send(1, 1, Msg(vec![0; 1_000_000])).unwrap();
        assert!(
            t.elapsed() < Duration::from_millis(50),
            "local send must not pace"
        );
        assert_eq!(stats.snapshot(1).sent_bytes, 0);
        assert_eq!(r[1].recv().unwrap().0.len(), 1_000_000);
    }

    #[test]
    fn bandwidth_model_paces_sender() {
        // 1 MB at 10 MB/s => >= 100 ms.
        let model = NetModel::slow(10_000_000.0, Duration::ZERO);
        let (f, _r, _stats) = setup(2, model);
        let t = Instant::now();
        f.send(0, 1, Msg(vec![0; 1_000_000])).unwrap();
        assert!(
            t.elapsed() >= Duration::from_millis(95),
            "took {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn latency_applies_per_message() {
        let model = NetModel::slow(f64::INFINITY, Duration::from_millis(10));
        let (f, _r, _stats) = setup(2, model);
        let t = Instant::now();
        for _ in 0..3 {
            f.send(0, 1, Msg(vec![0; 1])).unwrap();
        }
        assert!(t.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn disconnected_receiver_reports_error() {
        let (f, r, _stats) = setup(2, NetModel::instant());
        drop(r.into_iter().nth(1));
        let err = f.send(0, 1, Msg(vec![1])).unwrap_err();
        assert_eq!(err, Disconnected { to: 1 });
    }

    #[test]
    fn busy_guard_accumulates() {
        let stats = NetStats::new(1);
        {
            let _g = BusyGuard::start(&stats, 0);
            std::thread::sleep(Duration::from_millis(20));
        }
        let busy = stats.snapshot(0).busy_ns;
        assert!(busy >= 15_000_000, "busy {busy} ns");
        let pct = stats.cpu_percent(0, Duration::from_millis(40));
        assert!(pct > 25.0, "cpu% {pct}");
    }

    #[test]
    fn memory_watermark_tracks_peak() {
        let stats = NetStats::new(1);
        stats.mem_alloc(0, 100);
        stats.mem_alloc(0, 200);
        stats.mem_free(0, 100);
        stats.mem_alloc(0, 50);
        let snap = stats.snapshot(0);
        assert_eq!(snap.mem_peak, 300);
    }

    #[test]
    fn send_mbps_is_computed_from_bytes() {
        let (f, _r, stats) = setup(2, NetModel::instant());
        f.send(0, 1, Msg(vec![0; 1_000_000])).unwrap();
        let mbps = stats.send_mbps(0, Duration::from_secs(1));
        assert!((mbps - 8.0).abs() < 1e-9, "1 MB/s = 8 Mbps, got {mbps}");
    }

    #[test]
    fn record_send_charges_both_endpoints_symmetrically() {
        let stats = NetStats::new(3);
        stats.record_send(0, 2, 100);
        stats.record_send(0, 2, 50);
        stats.record_send(2, 0, 25);
        let s0 = stats.snapshot(0);
        let s2 = stats.snapshot(2);
        assert_eq!(s0.sent_bytes, 150);
        assert_eq!(s0.sent_msgs, 2);
        assert_eq!(s0.recv_bytes, 25);
        assert_eq!(s0.recv_msgs, 1);
        assert_eq!(s2.recv_bytes, s0.sent_bytes);
        assert_eq!(s2.recv_msgs, s0.sent_msgs);
        assert_eq!(s2.sent_bytes, s0.recv_bytes);
        assert_eq!(stats.snapshot(1), NodeSnapshot::default());
    }

    #[test]
    fn mem_peak_is_a_true_watermark() {
        let stats = NetStats::new(1);
        stats.mem_alloc(0, 1000);
        stats.mem_free(0, 1000);
        // Re-allocating less than the old peak must not move it.
        stats.mem_alloc(0, 10);
        assert_eq!(stats.snapshot(0).mem_peak, 1000);
        // Exceeding it must.
        stats.mem_alloc(0, 2000);
        assert_eq!(stats.snapshot(0).mem_peak, 2010);
    }

    #[test]
    fn rates_at_zero_elapsed_are_zero_not_nan() {
        let stats = NetStats::new(1);
        stats.add_busy(0, Duration::from_secs(1));
        stats.record_send(0, 0, 0); // self-accounting is allowed directly
        let cpu = stats.cpu_percent(0, Duration::ZERO);
        let mbps = stats.send_mbps(0, Duration::ZERO);
        assert_eq!(cpu, 0.0, "cpu_percent at zero elapsed must be 0, got {cpu}");
        assert_eq!(mbps, 0.0, "send_mbps at zero elapsed must be 0, got {mbps}");
        assert!(cpu.is_finite() && mbps.is_finite());
    }

    #[test]
    fn node_snapshot_display_uses_paper_units() {
        let snap = NodeSnapshot {
            sent_bytes: 2_500_000,
            recv_bytes: 1_000_000,
            sent_msgs: 10,
            recv_msgs: 4,
            busy_ns: 1_500_000_000,
            mem_peak: 3_000_000,
        };
        let s = snap.to_string();
        assert!(s.contains("2.50 MB"), "{s}");
        assert!(s.contains("1.50 s"), "{s}");
        assert!(s.contains("3.00 MB"), "{s}");
    }

    #[test]
    fn concurrent_sends_from_many_threads() {
        let (f, r, stats) = setup(4, NetModel::instant());
        let mut handles = Vec::new();
        for from in 0..4usize {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    f.send(from, (from + 1) % 4, Msg(vec![0; i])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total_recv: usize = (0..4).map(|i| r[i].try_iter().count()).sum();
        assert_eq!(total_recv, 400);
        let sent: u64 = (0..4).map(|i| stats.snapshot(i).sent_msgs).sum();
        assert_eq!(sent, 400);
    }

    #[test]
    fn delay_for_combines_latency_and_bandwidth() {
        let m = NetModel::slow(1000.0, Duration::from_millis(5));
        let d = m.delay_for(1000);
        assert_eq!(d, Duration::from_millis(1005));
        assert_eq!(NetModel::instant().delay_for(1 << 30), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "stats sized")]
    fn mismatched_stats_size_panics() {
        let stats = NetStats::new(2);
        let _ = Fabric::<Msg>::new(3, NetModel::instant(), stats);
    }
}
