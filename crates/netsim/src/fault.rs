//! Deterministic simulation time and seeded fault injection.
//!
//! Everything here derives from a single `u64` seed: which messages are
//! dropped, how long delayed messages wait, and which worker crashes at
//! which point of training. A fault decision is a **pure function** of
//! `(seed, from, to, per-edge sequence number)` — no RNG state is shared
//! between edges or threads — so a failure observed once can be replayed
//! exactly by re-running with the same seed (see `docs/TESTING.md`).
//!
//! [`SimClock`] abstracts the time base. The default wall clock keeps the
//! engine's real pacing behaviour; the virtual clock makes time a plain
//! counter the sender advances, so a single-threaded run produces
//! byte-identical observability timelines run after run.

use crate::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------

/// The simulation's time base: real time, or a virtual nanosecond counter.
///
/// Cloning shares the underlying source, so every fabric clone and the
/// observability recorder read the same timeline.
#[derive(Debug, Clone)]
pub struct SimClock {
    inner: ClockInner,
}

#[derive(Debug, Clone)]
enum ClockInner {
    Wall { started: Instant },
    Virtual { now_ns: Arc<AtomicU64> },
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::wall()
    }
}

impl SimClock {
    /// Real monotonic time; `sleep` really sleeps. The engine default.
    pub fn wall() -> SimClock {
        SimClock {
            inner: ClockInner::Wall {
                started: Instant::now(),
            },
        }
    }

    /// Virtual time starting at `ns`; `sleep` advances the counter instead
    /// of blocking. With a single sending thread this makes every timestamp
    /// of a run a deterministic function of the message sequence.
    pub fn virtual_at(ns: u64) -> SimClock {
        SimClock {
            inner: ClockInner::Virtual {
                now_ns: Arc::new(AtomicU64::new(ns)),
            },
        }
    }

    /// Whether this is a virtual clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self.inner, ClockInner::Virtual { .. })
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            ClockInner::Wall { started } => started.elapsed().as_nanos() as u64,
            ClockInner::Virtual { now_ns } => now_ns.load(Ordering::Relaxed),
        }
    }

    /// Advances a virtual clock by `d`; no-op on a wall clock (real time
    /// advances itself).
    pub fn advance(&self, d: Duration) {
        if let ClockInner::Virtual { now_ns } = &self.inner {
            now_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Advances a virtual clock forward to absolute time `ns` — a no-op if
    /// the clock already reads at or past `ns` (virtual time never runs
    /// backwards) or on a wall clock. This is the primitive a
    /// discrete-event loop uses to jump to its next event timestamp
    /// (ts-front's request loop) without accumulating drift from repeated
    /// relative `advance` deltas.
    pub fn advance_to(&self, ns: u64) {
        if let ClockInner::Virtual { now_ns } = &self.inner {
            now_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Sleeps the calling thread (wall) or advances the counter (virtual).
    pub fn sleep(&self, d: Duration) {
        match &self.inner {
            ClockInner::Wall { .. } => std::thread::sleep(d),
            ClockInner::Virtual { now_ns } => {
                now_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    /// The shared counter of a virtual clock, for wiring into an
    /// observability recorder as its time source. `None` for wall clocks.
    pub fn time_source(&self) -> Option<Arc<AtomicU64>> {
        match &self.inner {
            ClockInner::Wall { .. } => None,
            ClockInner::Virtual { now_ns } => Some(Arc::clone(now_ns)),
        }
    }
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

/// What the plan says to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message. The reliable fabric recovers lost frames
    /// by retransmitting until acknowledged, so a training cluster survives
    /// drops; on a raw (unreliable) fabric the message is simply gone.
    Drop,
    /// Deliver after an extra delay (sender-side, so per-channel FIFO order
    /// is preserved and protocol invariants hold).
    Delay(Duration),
    /// Deliver the message twice back-to-back, exercising receiver-side
    /// dedup (a retransmit whose original also arrived looks the same).
    Duplicate,
}

/// A seeded fault-injection plan.
///
/// Message faults (drops, delays) are decided edge-locally: each
/// `(from, to)` channel numbers its messages `0, 1, 2, ...` and the decision
/// for message `seq` is `decide(seed, from, to, seq)` — deterministic no
/// matter how threads interleave. Worker crashes are keyed on the global
/// subtree-delegation count, which the (single-threaded) master dispatch
/// loop advances, so the crash point is equally reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    delay_prob: f64,
    dup_prob: f64,
    max_delay: Duration,
    crash_at_delegation: Option<u64>,
    /// Scripted membership: `n` fresh workers join `at_ns` into the run.
    /// Stored as plain nanoseconds (not `Instant`) so the plan stays a pure
    /// value — clonable, comparable, replayable off any [`SimClock`].
    join: Option<(u64, usize)>,
    /// Scripted spot preemption: `(at_ns, victim, grace_ns)` — the victim
    /// is told to drain at `at_ns` and must be gone `grace_ns` later.
    /// Distinct from [`with_crash_at_delegation`](Self::with_crash_at_delegation):
    /// a preemption is *announced*, a crash is silent.
    preempt: Option<(u64, NodeId, u64)>,
    /// Per-machine compute heterogeneity: `(machine, factor)` multiplies the
    /// machine's modeled per-unit work cost (2.0 = half-speed CPU).
    work_scales: Vec<(NodeId, f64)>,
    /// Per-machine link heterogeneity: `(machine, factor)` multiplies the
    /// machine's outbound transmission delay (2.0 = half-bandwidth NIC).
    bandwidth_scales: Vec<(NodeId, f64)>,
}

/// SplitMix64: the mixing function behind every fault decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit float in `[0, 1)` from the top 53 bits of a hash.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            dup_prob: 0.0,
            max_delay: Duration::ZERO,
            crash_at_delegation: None,
            join: None,
            preempt: None,
            work_scales: Vec::new(),
            bandwidth_scales: Vec::new(),
        }
    }

    /// The seed every decision derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drops each remote message independently with probability `prob`.
    pub fn with_message_drops(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.drop_prob = prob;
        self
    }

    /// Delays each remote message independently with probability `prob`, by
    /// a seed-derived duration in `[0, max)`.
    pub fn with_message_delays(mut self, prob: f64, max: Duration) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.delay_prob = prob;
        self.max_delay = max;
        self
    }

    /// Duplicates each remote message independently with probability `prob`
    /// (both copies are delivered back-to-back). Decided from the same pure
    /// `(seed, edge, seq)` derivation as drops and delays, via an
    /// independent hash chain so enabling duplicates never changes which
    /// messages an existing seed drops or delays.
    pub fn with_message_duplicates(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.dup_prob = prob;
        self
    }

    /// Crashes the worker that receives the `n`-th subtree-task delegation
    /// (1-based, counted cluster-wide), right after the plan message is
    /// sent — i.e. mid-subtree-task.
    pub fn with_crash_at_delegation(mut self, n: u64) -> FaultPlan {
        assert!(n >= 1, "delegations are counted from 1");
        self.crash_at_delegation = Some(n);
        self
    }

    /// Like [`with_crash_at_delegation`](Self::with_crash_at_delegation),
    /// with `n` derived from the seed in `1..=max_delegation`.
    pub fn with_seeded_crash(self, max_delegation: u64) -> FaultPlan {
        assert!(max_delegation >= 1, "need a non-empty delegation range");
        let n = 1 + mix(self.seed ^ 0x000C_4A57) % max_delegation;
        self.with_crash_at_delegation(n)
    }

    /// The global delegation count at which a worker crash fires, if any.
    pub fn crash_at_delegation(&self) -> Option<u64> {
        self.crash_at_delegation
    }

    /// Scripts `n` workers joining the cluster `at` into the run. Membership
    /// events are plain scheduled times read off the fabric's [`SimClock`],
    /// so a seeded run replays them at the identical (virtual) instant.
    pub fn with_worker_join(mut self, at: Duration, n: usize) -> FaultPlan {
        assert!(n >= 1, "a join must add at least one worker");
        self.join = Some((at.as_nanos() as u64, n));
        self
    }

    /// Scripts a spot preemption: `victim` is told to drain `at` into the
    /// run and is granted `grace` to finish in-flight work, hand its columns
    /// off and say `Goodbye` — after which the engine escalates to the
    /// silent-crash recovery path. Distinct from a crash: the kill is
    /// *announced*, so no work need be lost.
    pub fn with_preemption(mut self, at: Duration, victim: NodeId, grace: Duration) -> FaultPlan {
        self.preempt = Some((at.as_nanos() as u64, victim, grace.as_nanos() as u64));
        self
    }

    /// Scales `machine`'s modeled compute cost by `factor` (2.0 = a
    /// half-speed CPU). Later calls for the same machine override.
    pub fn with_work_scale(mut self, machine: NodeId, factor: f64) -> FaultPlan {
        assert!(
            factor.is_finite() && factor > 0.0,
            "work scale must be positive"
        );
        self.work_scales.retain(|&(m, _)| m != machine);
        self.work_scales.push((machine, factor));
        self
    }

    /// Scales `machine`'s outbound transmission delay by `factor` (2.0 = a
    /// half-bandwidth NIC). Later calls for the same machine override.
    pub fn with_bandwidth_scale(mut self, machine: NodeId, factor: f64) -> FaultPlan {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bandwidth scale must be positive"
        );
        self.bandwidth_scales.retain(|&(m, _)| m != machine);
        self.bandwidth_scales.push((machine, factor));
        self
    }

    /// The scripted membership join `(at_ns, n_workers)`, if any.
    pub fn worker_join(&self) -> Option<(u64, usize)> {
        self.join
    }

    /// The scripted preemption `(at_ns, victim, grace_ns)`, if any.
    pub fn preemption(&self) -> Option<(u64, NodeId, u64)> {
        self.preempt
    }

    /// `machine`'s compute-cost multiplier (1.0 when unset).
    pub fn work_scale(&self, machine: NodeId) -> f64 {
        self.work_scales
            .iter()
            .find(|&&(m, _)| m == machine)
            .map_or(1.0, |&(_, f)| f)
    }

    /// `machine`'s outbound-delay multiplier (1.0 when unset).
    pub fn bandwidth_scale(&self, machine: NodeId) -> f64 {
        self.bandwidth_scales
            .iter()
            .find(|&&(m, _)| m == machine)
            .map_or(1.0, |&(_, f)| f)
    }

    /// Whether any scripted membership event (join or preemption) is set.
    pub fn affects_membership(&self) -> bool {
        self.join.is_some() || self.preempt.is_some()
    }

    /// The fate of message `seq` on the `(from, to)` edge. Pure: same plan,
    /// same arguments, same answer.
    pub fn decide(&self, from: NodeId, to: NodeId, seq: u64) -> FaultDecision {
        if self.drop_prob == 0.0 && self.delay_prob == 0.0 && self.dup_prob == 0.0 {
            return FaultDecision::Deliver;
        }
        let edge = ((from as u64) << 32) | to as u64;
        let h = mix(self.seed ^ mix(edge ^ mix(seq)));
        if unit_f64(h) < self.drop_prob {
            return FaultDecision::Drop;
        }
        let h2 = mix(h);
        if unit_f64(h2) < self.delay_prob {
            let frac = unit_f64(mix(h2));
            let ns = (self.max_delay.as_nanos() as f64 * frac) as u64;
            return FaultDecision::Delay(Duration::from_nanos(ns));
        }
        // Independent chain: `mix(h2)` is consumed by the delay fraction
        // above, so duplicates branch off a salted rehash instead — adding a
        // dup probability leaves an existing seed's drops/delays untouched.
        if unit_f64(mix(h2 ^ 0x00D1_CA7E)) < self.dup_prob {
            return FaultDecision::Duplicate;
        }
        FaultDecision::Deliver
    }

    /// Whether any message fault (drop, delay, or duplicate) is enabled.
    pub fn affects_messages(&self) -> bool {
        self.drop_prob > 0.0 || self.delay_prob > 0.0 || self.dup_prob > 0.0
    }
}

/// Shared per-fabric fault state: the plan plus one message counter per
/// directed edge.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    n: usize,
    seq: Vec<AtomicU64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, n: usize) -> FaultState {
        FaultState {
            plan,
            n,
            seq: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Takes the next sequence number of the `(from, to)` edge.
    pub(crate) fn next_seq(&self, from: NodeId, to: NodeId) -> u64 {
        self.seq[from * self.n + to].fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances_and_virtual_is_manual() {
        let wall = SimClock::wall();
        assert!(!wall.is_virtual());
        let a = wall.now_ns();
        std::thread::sleep(Duration::from_millis(2));
        assert!(wall.now_ns() > a);
        wall.advance(Duration::from_secs(100)); // no-op
        assert!(wall.now_ns() < 90_000_000_000);

        let v = SimClock::virtual_at(5);
        assert!(v.is_virtual());
        assert_eq!(v.now_ns(), 5);
        v.sleep(Duration::from_nanos(10));
        v.advance(Duration::from_nanos(1));
        assert_eq!(v.now_ns(), 16);
        let shared = v.clone();
        shared.advance(Duration::from_nanos(4));
        assert_eq!(v.now_ns(), 20, "clones share the counter");
        assert!(v.time_source().is_some() && wall.time_source().is_none());
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_edge_seq() {
        let p = FaultPlan::new(42)
            .with_message_drops(0.3)
            .with_message_delays(0.3, Duration::from_millis(10));
        for from in 0..4 {
            for to in 0..4 {
                for seq in 0..64 {
                    assert_eq!(p.decide(from, to, seq), p.decide(from, to, seq));
                }
            }
        }
        // A different seed gives a different decision sequence.
        let q = FaultPlan::new(43)
            .with_message_drops(0.3)
            .with_message_delays(0.3, Duration::from_millis(10));
        let a: Vec<_> = (0..256).map(|s| p.decide(0, 1, s)).collect();
        let b: Vec<_> = (0..256).map(|s| q.decide(0, 1, s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let p = FaultPlan::new(7).with_message_drops(0.25);
        let drops = (0..10_000)
            .filter(|&s| p.decide(1, 2, s) == FaultDecision::Drop)
            .count();
        assert!(
            (2_000..3_000).contains(&drops),
            "{drops} drops out of 10000"
        );
        let d = FaultPlan::new(7).with_message_delays(1.0, Duration::from_millis(8));
        for s in 0..1_000 {
            match d.decide(1, 2, s) {
                FaultDecision::Delay(dur) => assert!(dur < Duration::from_millis(8)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicates_are_seeded_and_leave_drops_and_delays_untouched() {
        let base = FaultPlan::new(7)
            .with_message_drops(0.2)
            .with_message_delays(0.2, Duration::from_millis(5));
        let dup = base.clone().with_message_duplicates(0.3);
        assert!(dup.affects_messages());
        let mut dups = 0;
        for seq in 0..10_000 {
            let a = base.decide(1, 2, seq);
            let b = dup.decide(1, 2, seq);
            match (a, b) {
                (FaultDecision::Deliver, FaultDecision::Duplicate) => dups += 1,
                // Every drop/delay decision of the base plan must survive
                // the added duplicate probability bit-identically.
                _ => assert_eq!(a, b, "seq {seq}"),
            }
        }
        // ~30% of the ~64% delivered messages duplicate: expect ~1920.
        assert!((1_500..2_400).contains(&dups), "{dups} duplicates");
        // Pure function: replays identically.
        let a: Vec<_> = (0..512).map(|s| dup.decide(0, 3, s)).collect();
        let b: Vec<_> = (0..512).map(|s| dup.decide(0, 3, s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn dup_only_plan_affects_messages() {
        let p = FaultPlan::new(1).with_message_duplicates(1.0);
        assert!(p.affects_messages());
        assert_eq!(p.decide(0, 1, 0), FaultDecision::Duplicate);
    }

    #[test]
    fn advance_to_is_monotone_and_wall_noop() {
        let v = SimClock::virtual_at(100);
        v.advance_to(1_000);
        assert_eq!(v.now_ns(), 1_000);
        // Never backwards: a stale target leaves the clock untouched.
        v.advance_to(500);
        assert_eq!(v.now_ns(), 1_000);
        v.advance_to(1_000);
        assert_eq!(v.now_ns(), 1_000);
        // Wall clocks ignore it entirely.
        let w = SimClock::wall();
        w.advance_to(u64::MAX);
        assert!(w.now_ns() < 1_000_000_000);
    }

    #[test]
    fn disabled_plan_always_delivers() {
        let p = FaultPlan::new(9);
        assert!(!p.affects_messages());
        assert!((0..1000).all(|s| p.decide(0, 1, s) == FaultDecision::Deliver));
    }

    #[test]
    fn seeded_crash_is_in_range_and_deterministic() {
        for seed in 0..50u64 {
            let p = FaultPlan::new(seed).with_seeded_crash(6);
            let n = p.crash_at_delegation().unwrap();
            assert!((1..=6).contains(&n));
            assert_eq!(
                FaultPlan::new(seed)
                    .with_seeded_crash(6)
                    .crash_at_delegation(),
                Some(n)
            );
        }
    }

    #[test]
    fn membership_events_are_pure_plan_data() {
        let p = FaultPlan::new(3)
            .with_worker_join(Duration::from_millis(50), 2)
            .with_preemption(Duration::from_millis(80), 3, Duration::from_millis(200))
            .with_work_scale(2, 2.0)
            .with_bandwidth_scale(1, 0.5);
        assert!(p.affects_membership());
        assert!(!p.affects_messages(), "membership alone needs no retries");
        assert_eq!(p.worker_join(), Some((50_000_000, 2)));
        assert_eq!(p.preemption(), Some((80_000_000, 3, 200_000_000)));
        assert_eq!(p.work_scale(2), 2.0);
        assert_eq!(p.work_scale(9), 1.0, "unset machines run at unit scale");
        assert_eq!(p.bandwidth_scale(1), 0.5);
        assert_eq!(p.bandwidth_scale(2), 1.0);
        // Pure value semantics: a clone replays the identical script, and
        // adding membership events never perturbs message-fault decisions.
        assert_eq!(p, p.clone());
        let base = FaultPlan::new(3).with_message_drops(0.3);
        let scripted = base
            .clone()
            .with_worker_join(Duration::from_millis(1), 1)
            .with_preemption(Duration::from_millis(2), 1, Duration::ZERO);
        for seq in 0..512 {
            assert_eq!(base.decide(0, 1, seq), scripted.decide(0, 1, seq));
        }
        // Re-scaling a machine overrides rather than accumulates.
        let q = p.with_work_scale(2, 3.0);
        assert_eq!(q.work_scale(2), 3.0);
    }

    #[test]
    fn fault_state_sequences_edges_independently() {
        let st = FaultState::new(FaultPlan::new(1), 3);
        assert_eq!(st.next_seq(0, 1), 0);
        assert_eq!(st.next_seq(0, 1), 1);
        assert_eq!(st.next_seq(1, 0), 0, "reverse edge counts separately");
        assert_eq!(st.next_seq(0, 2), 0);
    }
}
