//! The paper's Fig. 1 scenario: predicting credit-card default from a mixed
//! numeric/categorical customer table, exercising CSV ingestion, missing
//! values, model export, stop-at-any-depth prediction and unseen-category
//! handling (Appendix D).
//!
//! ```text
//! cargo run -p ts-examples --release --bin credit_default
//! ```

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::csv::{parse_csv, TaskKind};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{Task, Value};

fn main() {
    // Start from the exact table of the paper's Fig. 1(a) to show CSV
    // ingestion with schema inference (Age/Income numeric, Education/
    // HomeOwner categorical, "?" = missing).
    let csv = "\
Age,Education,HomeOwner,Income,Default
24,Bachelor,No,5000,No
28,Master,Yes,7500,No
44,Bachelor,Yes,5500,No
32,Secondary,Yes,6000,Yes
36,PhD,No,10000,No
48,Bachelor,Yes,6500,No
37,Secondary,No,3000,Yes
42,Bachelor,No,6000,No
54,Secondary,No,4000,Yes
47,PhD,Yes,?,No
";
    let fig1 = parse_csv(csv, "Default", TaskKind::Classification).expect("valid CSV");
    println!(
        "Fig. 1 table: {} rows, {} attrs, task {:?}",
        fig1.n_rows(),
        fig1.n_attrs(),
        fig1.schema().task
    );

    // Scale the same shape up synthetically so the cluster has real work:
    // 30k customers, 2 numeric + 2 categorical attributes, 3% missing.
    let customers = generate(&SynthSpec {
        rows: 30_000,
        numeric: 2,
        categorical: 2,
        cat_cardinality: 5,
        task: Task::Classification { n_classes: 2 },
        missing_rate: 0.03,
        noise: 0.05,
        concept_depth: 5,
        latent: 0,
        seed: 9,
    });
    let (train, test) = customers.train_test_split(0.8, 3);

    let cluster = Cluster::launch(
        ClusterConfig {
            n_workers: 3,
            compers_per_worker: 2,
            tau_d: 4_000,
            ..Default::default()
        },
        &train,
    );
    let model = cluster
        .train(JobSpec::decision_tree(train.schema().task).with_dmax(10))
        .into_tree();
    cluster.shutdown();

    let acc = accuracy(
        &model.predict_labels(&test),
        test.labels().as_class().unwrap(),
    );
    println!("full-depth test accuracy: {:.2}%", acc * 100.0);

    // Appendix D: the same trained tree can predict at ANY depth cap —
    // no retraining needed for a shallower model.
    for cap in [1, 2, 4, 8] {
        let pred: Vec<u32> = (0..test.n_rows())
            .map(|r| model.predict_row(&test, r, cap).label())
            .collect();
        let acc = accuracy(&pred, test.labels().as_class().unwrap());
        println!("  depth cap {cap}: accuracy {:.2}%", acc * 100.0);
    }

    // Appendix D: a missing value or an unseen categorical value stops the
    // walk at the current node and reports its prediction.
    let with_missing = model.predict_with(|_| Value::Missing, u32::MAX);
    println!(
        "all-missing row predicts label {} with pmf {:?}",
        with_missing.label(),
        with_missing.pmf()
    );

    // Model export: the master "flushes trees to disk" — round-trip JSON.
    let json = model.to_json();
    let back = ts_tree::DecisionTreeModel::from_json(&json).expect("roundtrip");
    assert_eq!(back, model);
    println!("model JSON is {} KB and round-trips", json.len() / 1024);
}
