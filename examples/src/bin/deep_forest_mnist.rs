//! The §VII case study: train a deep forest (multi-grained scanning +
//! cascade forest) on MNIST-like images with TreeServer, printing the
//! Table VII-style per-step report.
//!
//! ```text
//! cargo run -p ts-examples --release --bin deep_forest_mnist
//! ```

use treeserver::ClusterConfig;
use ts_datatable::synth::mnist_like;
use ts_deepforest::{DeepForest, DeepForestConfig};

fn main() {
    // The paper uses 10% of MNIST (6,000 train / 1,000 test); default here
    // is a lighter 1,200/400 so the example finishes in seconds — pass a
    // scale factor to grow it.
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let n_train = (1_200.0 * scale) as usize;
    let n_test = (400.0 * scale) as usize;
    let (train, test) = mnist_like(n_train, n_test, 7);
    println!(
        "images: {} train / {} test, 28x28, 10 classes",
        n_train, n_test
    );

    let cfg = DeepForestConfig {
        windows: vec![3, 5, 7],
        stride: 3,
        mgs_forests: 2,
        mgs_trees: 10,
        mgs_dmax: 10,
        cf_layers: 6,
        cf_forests: 2,
        cf_trees: 10,
        cf_dmax: u32::MAX,
        cluster: ClusterConfig {
            n_workers: 3,
            compers_per_worker: 3,
            tau_d: 20_000,
            tau_dfs: 80_000,
            ..Default::default()
        },
        seed: 3,
    };

    let t0 = std::time::Instant::now();
    let (model, reports) = DeepForest::train(cfg, &train, &test);
    println!(
        "\n{:<14} {:>12} {:>12} {:>10}",
        "Step", "Train", "Test", "Accuracy"
    );
    for r in &reports {
        println!(
            "{:<14} {:>12} {:>12} {:>10}",
            r.step,
            format!("{:.2?}", r.train_time),
            r.test_time.map_or("-".into(), |t| format!("{t:.2?}")),
            r.test_accuracy
                .map_or("-".into(), |a| format!("{:.2}%", a * 100.0)),
        );
    }
    println!(
        "\ntotal: {:?} for {} trees across MGS + CF",
        t0.elapsed(),
        model.n_trees()
    );
}
