//! The paper's Fig. 2 scenario: a client submits several model-training
//! jobs with different hyperparameters to one TreeServer master — two
//! decision trees (different depths/impurities) and a random forest — and
//! the master trains all their trees together in the shared pool.
//!
//! This is the paper's motivation for the tree pool (`n_pool`): "we often
//! need to train many tree models with different hyperparameters for model
//! selection ... T-thinker trains all these trees together so that we can
//! have more node-centric tasks to keep CPUs busy" (§III).
//!
//! ```text
//! cargo run -p ts-examples --release --bin model_selection
//! ```

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::cv::kfold_splits;
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};
use ts_splits::Impurity;

fn main() {
    let table = generate(&SynthSpec {
        rows: 30_000,
        numeric: 10,
        categorical: 3,
        cat_cardinality: 6,
        noise: 0.05,
        concept_depth: 6,
        latent: 4,
        seed: 77,
        ..Default::default()
    });
    let (dev, holdout) = table.train_test_split(0.8, 1);

    let cluster = Cluster::launch(
        ClusterConfig {
            n_workers: 4,
            compers_per_worker: 3,
            tau_d: 3_000,
            tau_dfs: 12_000,
            ..Default::default()
        },
        &dev,
    );

    // Fig. 2's job mix: DT1 (entropy, dmax 6), DT2 (Gini, dmax 8), and
    // RF3 (3 trees, 40% columns, Gini) — all submitted up front; the master
    // disassembles them into 5 trees and trains them concurrently.
    let t0 = std::time::Instant::now();
    let dt1 = cluster.submit(
        JobSpec::decision_tree(dev.schema().task)
            .with_impurity(Impurity::Entropy)
            .with_dmax(6),
    );
    let dt2 = cluster.submit(JobSpec::decision_tree(dev.schema().task).with_dmax(8));
    let rf3 = cluster
        .submit(JobSpec::random_forest_with_fraction(dev.schema().task, 3, 0.4).with_seed(3));

    let truth = holdout.labels().as_class().unwrap();
    let m_dt1 = cluster.wait(dt1).into_tree();
    let m_dt2 = cluster.wait(dt2).into_tree();
    let m_rf3 = cluster.wait(rf3).into_forest();
    println!("all three jobs trained concurrently in {:?}", t0.elapsed());
    println!(
        "  DT1 (entropy, dmax 6): {:>6.2}%  ({} nodes)",
        accuracy(&m_dt1.predict_labels(&holdout), truth) * 100.0,
        m_dt1.n_nodes()
    );
    println!(
        "  DT2 (gini, dmax 8):    {:>6.2}%  ({} nodes)",
        accuracy(&m_dt2.predict_labels(&holdout), truth) * 100.0,
        m_dt2.n_nodes()
    );
    println!(
        "  RF3 (3 trees, 40%):    {:>6.2}%",
        accuracy(&m_rf3.predict_labels(&holdout), truth) * 100.0
    );
    cluster.shutdown();

    // Hyperparameter selection by 4-fold cross-validation over dmax,
    // launching one cluster per fold's training split.
    println!("\n4-fold CV over dmax:");
    for dmax in [4u32, 8, 12] {
        let mut scores = Vec::new();
        for (train_rows, valid_rows) in kfold_splits(dev.n_rows(), 4, 9) {
            let tr = dev.select_rows(&train_rows);
            let va = dev.select_rows(&valid_rows);
            let cluster = Cluster::launch(
                ClusterConfig {
                    n_workers: 3,
                    compers_per_worker: 2,
                    tau_d: 2_000,
                    tau_dfs: 8_000,
                    ..Default::default()
                },
                &tr,
            );
            let m = cluster
                .train(JobSpec::decision_tree(tr.schema().task).with_dmax(dmax))
                .into_tree();
            cluster.shutdown();
            scores.push(accuracy(
                &m.predict_labels(&va),
                va.labels().as_class().unwrap(),
            ));
        }
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        println!(
            "  dmax {dmax:>2}: {:.2}% mean validation accuracy {scores:.3?}",
            mean * 100.0
        );
    }
}
