//! Gradient-boosted trees on the TreeServer engine: the boosting dependency
//! (§III) realised as sequential single-tree jobs with label broadcasts
//! between rounds, plus AUC / log-loss / feature-importance reporting.
//!
//! ```text
//! cargo run -p ts-examples --release --bin gradient_boosting
//! ```

use treeserver::{train_gbt, ClusterConfig, GbtConfig};
use ts_datatable::metrics::{accuracy, auc, log_loss};
use ts_datatable::synth::{generate, SynthSpec};

fn main() {
    let table = generate(&SynthSpec {
        rows: 20_000,
        numeric: 8,
        categorical: 2,
        cat_cardinality: 6,
        noise: 0.05,
        concept_depth: 5,
        seed: 33,
        ..Default::default()
    });
    let (train, test) = table.train_test_split(0.8, 1);
    println!(
        "data: {} train rows, {} attrs",
        train.n_rows(),
        train.n_attrs()
    );

    let cluster_cfg = ClusterConfig {
        n_workers: 3,
        compers_per_worker: 2,
        tau_d: 2_500,
        tau_dfs: 10_000,
        ..Default::default()
    };

    for rounds in [5usize, 20, 50] {
        let t0 = std::time::Instant::now();
        let model = train_gbt(
            cluster_cfg.clone(),
            &train,
            GbtConfig::for_task(train.schema().task)
                .with_rounds(rounds)
                .with_eta(0.2)
                .with_dmax(4),
        );
        let margins = model.predict_margins(&test);
        let probs: Vec<f64> = margins.iter().map(|m| 1.0 / (1.0 + (-m).exp())).collect();
        let truth = test.labels().as_class().unwrap();
        println!(
            "{rounds:>3} rounds in {:>8.2?}: accuracy {:.2}%, AUC {:.4}, log-loss {:.4}",
            t0.elapsed(),
            accuracy(&model.predict_labels(&test), truth) * 100.0,
            auc(&probs, truth),
            log_loss(&probs, truth),
        );
    }

    // Feature importance from the last boosted model's trees.
    let model = train_gbt(
        cluster_cfg,
        &train,
        GbtConfig::for_task(train.schema().task)
            .with_rounds(20)
            .with_eta(0.2),
    );
    let forest = ts_tree::ForestModel::new(model.trees.clone(), ts_datatable::Task::Regression);
    let imp = forest.feature_importance(train.n_attrs());
    let mut ranked: Vec<(usize, f64)> = imp.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop features by gain importance:");
    for (attr, v) in ranked.iter().take(5) {
        println!("  {:<8} {:.3}", train.schema().attrs[*attr].name, v);
    }
}
