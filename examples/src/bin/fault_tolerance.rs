//! Fault tolerance: kill a worker mid-training and watch the master
//! re-replicate its columns from the surviving replicas and restart the
//! affected trees (paper §IV "Fault Tolerance" / Appendix E).
//!
//! ```text
//! cargo run -p ts-examples --release --bin fault_tolerance
//! ```

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};

fn main() {
    let table = generate(&SynthSpec {
        rows: 40_000,
        numeric: 10,
        categorical: 2,
        noise: 0.05,
        concept_depth: 6,
        seed: 23,
        ..Default::default()
    });
    let (train, test) = table.train_test_split(0.8, 1);

    // Replication k = 2 (the paper's default): every column survives one
    // worker crash.
    let cfg = ClusterConfig {
        n_workers: 4,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 3_000,
        tau_dfs: 12_000,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &train);

    println!("submitting a 10-tree random forest ...");
    let handle = cluster.submit(JobSpec::random_forest(train.schema().task, 10).with_seed(2));

    // Give the job a moment to get tasks in flight, then crash worker 3.
    std::thread::sleep(std::time::Duration::from_millis(50));
    println!("killing worker 3 mid-flight");
    cluster.kill_worker(3);

    let forest = cluster.wait(handle).into_forest();
    let report = cluster.shutdown();

    let acc = accuracy(
        &forest.predict_labels(&test),
        test.labels().as_class().unwrap(),
    );
    println!(
        "job completed after the crash: {} trees, test accuracy {:.2}%",
        forest.n_trees(),
        acc * 100.0
    );
    println!(
        "surviving workers' send totals: {:?} bytes",
        report.per_node[1..]
            .iter()
            .map(|s| s.sent_bytes)
            .collect::<Vec<_>>()
    );
}
