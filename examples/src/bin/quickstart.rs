//! Quickstart: launch a TreeServer cluster, train a decision tree and a
//! random forest, and read the run statistics.
//!
//! ```text
//! cargo run -p ts-examples --release --bin quickstart
//! ```

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};

fn main() {
    // A 50k-row synthetic classification table with a planted tree concept.
    let table = generate(&SynthSpec {
        rows: 50_000,
        numeric: 12,
        categorical: 4,
        cat_cardinality: 8,
        noise: 0.05,
        concept_depth: 7,
        // A few latent factors proxied by every column, like real tabular
        // data — this is what makes sqrt(m)-column forest trees viable.
        latent: 4,
        seed: 42,
        ..Default::default()
    });
    let (train, test) = table.train_test_split(0.8, 1);
    println!(
        "data: {} train rows, {} test rows, {} attributes",
        train.n_rows(),
        test.n_rows(),
        train.n_attrs()
    );

    // A 4-worker cluster, 3 compers each, paper-default thresholds scaled
    // to the data size.
    let cfg = ClusterConfig {
        n_workers: 4,
        compers_per_worker: 3,
        tau_d: 5_000,
        tau_dfs: 20_000,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &train);

    // One exact decision tree.
    let t0 = std::time::Instant::now();
    let tree = cluster
        .train(JobSpec::decision_tree(train.schema().task))
        .into_tree();
    println!(
        "decision tree: {} nodes, depth {}, trained in {:?}",
        tree.n_nodes(),
        tree.max_depth(),
        t0.elapsed()
    );
    let acc = accuracy(
        &tree.predict_labels(&test),
        test.labels().as_class().unwrap(),
    );
    println!("decision tree test accuracy: {:.2}%", acc * 100.0);

    // A 20-tree random forest (|C| = sqrt(m) per tree, as in the paper).
    let t0 = std::time::Instant::now();
    let forest = cluster
        .train(JobSpec::random_forest(train.schema().task, 20).with_seed(7))
        .into_forest();
    println!(
        "random forest: {} trees in {:?}",
        forest.n_trees(),
        t0.elapsed()
    );
    let acc = accuracy(
        &forest.predict_labels(&test),
        test.labels().as_class().unwrap(),
    );
    println!("random forest test accuracy: {:.2}%", acc * 100.0);

    // Cluster statistics in the paper's units.
    let report = cluster.shutdown();
    println!(
        "cluster: avg CPU {:.0}%, avg send {:.1} Mbps, master sent {} KB, avg peak mem {:.1} MB",
        report.avg_cpu_percent,
        report.avg_send_mbps,
        report.master_sent_bytes / 1024,
        report.avg_peak_mem_bytes / 1e6
    );
}
