//! A loan/Allstate-shaped regression workload through the simulated DFS,
//! comparing TreeServer's exact forest with the MLlib-style baseline.
//!
//! ```text
//! cargo run -p ts-examples --release --bin loan_risk_regression
//! ```

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_baselines::{PlanetConfig, PlanetTrainer};
use ts_datatable::metrics::rmse;
use ts_datatable::synth::PaperDataset;
use ts_splits::Impurity;

fn main() {
    // Allstate's shape: 13 numeric + 14 categorical attributes, regression,
    // 5% missing values (Table I), scaled to ~40k rows.
    let table = PaperDataset::Allstate.generate(3e-3, 17);
    let (train, test) = table.train_test_split(0.8, 5);
    println!(
        "Allstate-shaped data: {} train rows, {} attrs",
        train.n_rows(),
        train.n_attrs()
    );
    let truth = test.labels().as_real().unwrap();

    // Stage the dataset in the simulated DFS with the paper's column-group
    // x row-group layout, then launch the cluster from it.
    let dir = std::env::temp_dir().join("treeserver-loan-example");
    let _ = std::fs::remove_dir_all(&dir);
    let dfs = ts_dfs::Dfs::new(ts_dfs::DfsConfig::local(&dir)).expect("dfs");
    dfs.put_table("loans", &train, 5, 10_000).expect("put");
    println!(
        "DFS holds the table in {} file opens so far",
        dfs.files_opened()
    );

    let cfg = ClusterConfig {
        n_workers: 4,
        compers_per_worker: 3,
        tau_d: 5_000,
        tau_dfs: 20_000,
        ..Default::default()
    };
    let cluster = Cluster::launch_from_dfs(cfg, &dfs, "loans").expect("launch");

    let t0 = std::time::Instant::now();
    let forest = cluster
        .train(JobSpec::random_forest(train.schema().task, 20).with_seed(11))
        .into_forest();
    let ts_time = t0.elapsed();
    let report = cluster.shutdown();
    let ts_rmse = rmse(&forest.predict_values(&test), truth);
    println!("TreeServer 20-tree forest: {ts_time:?}, test RMSE {ts_rmse:.3}");
    println!(
        "  avg CPU {:.0}%, master sent {} KB",
        report.avg_cpu_percent,
        report.master_sent_bytes / 1024
    );

    // The MLlib-style baseline on the same data (maxBins = 32 histograms,
    // level-synchronous).
    let planet = PlanetTrainer::new(PlanetConfig {
        n_machines: 4,
        threads_per_machine: 3,
        impurity: Impurity::Variance,
        ..Default::default()
    });
    let t0 = std::time::Instant::now();
    let (ml_forest, stats) = planet.train_forest(&train, 20, 11);
    let ml_time = t0.elapsed();
    let ml_rmse = rmse(&ml_forest.predict_values(&test), truth);
    println!(
        "MLlib-style forest:        {ml_time:?}, test RMSE {ml_rmse:.3} \
         ({} level jobs, {} MB of histograms)",
        stats.levels,
        stats.histogram_bytes / 1_000_000
    );

    println!(
        "exact vs approximate RMSE delta: {:+.4} (negative favours TreeServer)",
        ts_rmse - ml_rmse
    );
}
