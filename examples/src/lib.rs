//! Runnable examples for the TreeServer reproduction.
//!
//! - `quickstart` — train a decision tree and a random forest on a synthetic
//!   table and inspect the cluster report.
//! - `credit_default` — the paper's Fig. 1 scenario: mixed-type tabular
//!   classification with missing values, model export, stop-at-depth
//!   prediction and unseen-category handling.
//! - `loan_risk_regression` — an Allstate/loan-shaped regression workload
//!   loaded through the simulated DFS, comparing TreeServer with the
//!   MLlib-style baseline.
//! - `deep_forest_mnist` — the §VII deep-forest pipeline on MNIST-like
//!   images, printing Table VII-style step timings.
//! - `fault_tolerance` — kills a worker mid-training and shows recovery.
//!
//! Run with `cargo run -p ts-examples --release --bin <name>`.
